// Backlog queue unit tests (paper Sec. 4.1.5): ordering, retry-stops-drain,
// the atomic empty-flag fast path, and concurrent pushers.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/runtime_impl.hpp"

namespace {

using lci::detail::backlog_queue_t;

lci::status_t make(lci::errorcode_t code) {
  lci::status_t s;
  s.error.code = code;
  return s;
}

TEST(Backlog, EmptyProgressIsCheap) {
  backlog_queue_t backlog;
  EXPECT_EQ(backlog.size_approx(), 0u);
  EXPECT_FALSE(backlog.progress());  // the atomic flag short-circuits
}

TEST(Backlog, RetiresInOrder) {
  backlog_queue_t backlog;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    backlog.push([&order, i](lci::detail::backlog_action_t) {
      order.push_back(i);
      return make(lci::errorcode_t::done);
    });
  }
  EXPECT_EQ(backlog.size_approx(), 5u);
  EXPECT_TRUE(backlog.progress());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(backlog.size_approx(), 0u);
  EXPECT_FALSE(backlog.progress());
}

TEST(Backlog, RetryStopsTheDrainAndStaysAtTheFront) {
  backlog_queue_t backlog;
  int first_attempts = 0;
  bool second_ran = false;
  backlog.push([&](lci::detail::backlog_action_t) {
    ++first_attempts;
    return make(first_attempts < 3 ? lci::errorcode_t::retry_nomem
                                   : lci::errorcode_t::done);
  });
  backlog.push([&](lci::detail::backlog_action_t) {
    second_ran = true;
    return make(lci::errorcode_t::done);
  });
  // First two progress calls hit the retrying op and stop; the second op
  // must not run out of order.
  EXPECT_FALSE(backlog.progress());
  EXPECT_FALSE(second_ran);
  EXPECT_FALSE(backlog.progress());
  EXPECT_FALSE(second_ran);
  EXPECT_TRUE(backlog.progress());  // third attempt succeeds, drain continues
  EXPECT_TRUE(second_ran);
  EXPECT_EQ(first_attempts, 3);
}

TEST(Backlog, PostedCountsAsRetired) {
  backlog_queue_t backlog;
  backlog.push([](lci::detail::backlog_action_t) {
    return make(lci::errorcode_t::posted);
  });
  EXPECT_TRUE(backlog.progress());
  EXPECT_EQ(backlog.size_approx(), 0u);
}

TEST(Backlog, DrainAbortCancelsEveryEntryWithoutRunningIt) {
  backlog_queue_t backlog;
  int ran = 0, canceled = 0;
  for (int i = 0; i < 4; ++i) {
    backlog.push([&](lci::detail::backlog_action_t action) {
      if (action == lci::detail::backlog_action_t::cancel) {
        ++canceled;
        return make(lci::errorcode_t::fatal_canceled);
      }
      ++ran;
      return make(lci::errorcode_t::done);
    });
  }
  EXPECT_EQ(backlog.drain_abort(), 4u);
  EXPECT_EQ(canceled, 4);
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(backlog.size_approx(), 0u);
  EXPECT_FALSE(backlog.progress());
}

TEST(Backlog, ConcurrentPushersAllRetire) {
  backlog_queue_t backlog;
  std::atomic<int> retired{0};
  constexpr int pushers = 4, per = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < pushers; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < per; ++i) {
        backlog.push([&retired](lci::detail::backlog_action_t) {
          retired.fetch_add(1);
          return make(lci::errorcode_t::done);
        });
      }
    });
  }
  std::thread drainer([&] {
    while (retired.load() < pushers * per) {
      if (!backlog.progress()) std::this_thread::yield();
    }
  });
  for (auto& th : threads) th.join();
  drainer.join();
  EXPECT_EQ(retired.load(), pushers * per);
  EXPECT_EQ(backlog.size_approx(), 0u);
}

// Pending-table unit behaviour (rendezvous bookkeeping shares this header).
TEST(PendingTable, AddTakeSemantics) {
  lci::detail::pending_table_t<int> table;
  const uint32_t a = table.add(10);
  const uint32_t b = table.add(20);
  EXPECT_NE(a, b);
  EXPECT_EQ(table.size(), 2u);
  int out = 0;
  EXPECT_TRUE(table.take(b, &out));
  EXPECT_EQ(out, 20);
  EXPECT_FALSE(table.take(b, &out));  // consumed
  EXPECT_TRUE(table.take(a, &out));
  EXPECT_EQ(out, 10);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.take(12345, &out));  // never existed
}

}  // namespace
