// Collective tests: barrier/broadcast/reduce and the composed collectives,
// swept over rank counts (TEST_P), plus the graph-based nonblocking barrier.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "core/lci.hpp"

namespace {

lci::runtime_attr_t small_attr() {
  lci::runtime_attr_t attr;
  attr.matching_engine_buckets = 512;
  return attr;
}

class Collectives : public ::testing::TestWithParam<int> {};

TEST_P(Collectives, BroadcastEveryRoot) {
  const int n = GetParam();
  lci::sim::spawn(n, [&](int rank) {
    lci::g_runtime_init(small_attr());
    for (int root = 0; root < n; ++root) {
      std::vector<int> data(17, rank == root ? root + 1000 : -1);
      lci::broadcast(data.data(), data.size() * sizeof(int), root);
      for (const int v : data) ASSERT_EQ(v, root + 1000);
    }
    lci::barrier();
    lci::g_runtime_fina();
  });
}

TEST_P(Collectives, ReduceSum) {
  const int n = GetParam();
  lci::sim::spawn(n, [&](int rank) {
    lci::g_runtime_init(small_attr());
    // Vector reduce: element i contributed as rank*i.
    std::vector<long> mine(8), total(8, -1);
    for (std::size_t i = 0; i < mine.size(); ++i)
      mine[i] = static_cast<long>(rank) * static_cast<long>(i);
    lci::reduce(
        mine.data(), total.data(), mine.size() * sizeof(long),
        [](void* acc, const void* in, std::size_t bytes) {
          auto* a = static_cast<long*>(acc);
          const auto* b = static_cast<const long*>(in);
          for (std::size_t i = 0; i < bytes / sizeof(long); ++i) a[i] += b[i];
        },
        /*root=*/n - 1);
    if (rank == n - 1) {
      const long rank_sum = static_cast<long>(n) * (n - 1) / 2;
      for (std::size_t i = 0; i < total.size(); ++i)
        EXPECT_EQ(total[i], rank_sum * static_cast<long>(i));
    }
    lci::barrier();
    lci::g_runtime_fina();
  });
}

TEST_P(Collectives, Allreduce) {
  const int n = GetParam();
  lci::sim::spawn(n, [&](int rank) {
    lci::g_runtime_init(small_attr());
    long mine = 1L << rank;
    long total = 0;
    lci::allreduce(&mine, &total, sizeof(long),
                   [](void* acc, const void* in, std::size_t) {
                     *static_cast<long*>(acc) +=
                         *static_cast<const long*>(in);
                   });
    EXPECT_EQ(total, (1L << n) - 1);  // every rank holds the full sum
    lci::barrier();
    lci::g_runtime_fina();
  });
}

TEST_P(Collectives, Allgather) {
  const int n = GetParam();
  lci::sim::spawn(n, [&](int rank) {
    lci::g_runtime_init(small_attr());
    struct block_t {
      int rank;
      int payload[3];
    };
    block_t mine{rank, {rank * 10, rank * 20, rank * 30}};
    std::vector<block_t> all(static_cast<std::size_t>(n));
    lci::allgather(&mine, all.data(), sizeof(block_t));
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)].rank, r);
      EXPECT_EQ(all[static_cast<std::size_t>(r)].payload[2], r * 30);
    }
    lci::barrier();
    lci::g_runtime_fina();
  });
}

TEST_P(Collectives, GraphBarrierCompletes) {
  const int n = GetParam();
  lci::sim::spawn(n, [&](int rank) {
    (void)rank;
    lci::g_runtime_init(small_attr());
    lci::graph_t ib = lci::alloc_barrier_graph();
    lci::graph_start(ib);
    while (!lci::graph_test(ib)) lci::progress();
    lci::free_graph(&ib);
    // The nonblocking barrier composes with the blocking one.
    lci::barrier();
    lci::g_runtime_fina();
  });
}

// Overlap: work happens between starting and completing the graph barrier.
TEST_P(Collectives, GraphBarrierOverlapsWork) {
  const int n = GetParam();
  lci::sim::spawn(n, [&](int rank) {
    lci::g_runtime_init(small_attr());
    lci::graph_t ib = lci::alloc_barrier_graph();
    lci::graph_start(ib);
    // Point-to-point traffic while the barrier is in flight.
    const int peer = (rank + 1) % n;
    const int from = (rank - 1 + n) % n;
    int out = rank, in = -1;
    lci::comp_t sync = lci::alloc_sync(1);
    lci::status_t rs = lci::post_recv(from, &in, sizeof(in), 500, sync);
    lci::status_t ss;
    do {
      ss = lci::post_send(peer, &out, sizeof(out), 500, {});
      lci::progress();
    } while (ss.error.is_retry());
    if (rs.error.is_posted()) lci::sync_wait(sync, nullptr);
    EXPECT_EQ(in, from);
    while (!lci::graph_test(ib)) lci::progress();
    lci::free_graph(&ib);
    lci::barrier();
    lci::free_comp(&sync);
    lci::g_runtime_fina();
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, Collectives,
                         ::testing::Values(1, 2, 3, 4, 7, 8),
                         [](const auto& info) {
                           return "ranks" + std::to_string(info.param);
                         });

}  // namespace
