// k-mer counting mini-app tests: encoding, Bloom filter, concurrent hashmap,
// read generation, and the distributed pipeline against a serial oracle.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <unordered_map>

#include <cstdio>

#include "kmer/bloom.hpp"
#include "kmer/fasta.hpp"
#include "kmer/hashmap.hpp"
#include "kmer/kmer.hpp"
#include "kmer/pipeline.hpp"
#include "kmer/read_generator.hpp"

namespace {

TEST(Kmer, EncodeDecodeBases) {
  EXPECT_EQ(kmer::encode_base('A'), 0);
  EXPECT_EQ(kmer::encode_base('c'), 1);
  EXPECT_EQ(kmer::encode_base('G'), 2);
  EXPECT_EQ(kmer::encode_base('t'), 3);
  EXPECT_LT(kmer::encode_base('N'), 0);
  for (int code = 0; code < 4; ++code)
    EXPECT_EQ(kmer::encode_base(kmer::decode_base(code)), code);
}

TEST(Kmer, ReverseComplementIsInvolution) {
  for (uint64_t v : {0ull, 1ull, 0x123456789abcull, 0x3ffffffffffull}) {
    for (int k : {3, 15, 31}) {
      const kmer::kmer_t kmer =
          v & ((k < 32 ? (kmer::kmer_t{1} << (2 * k)) : 0) - 1);
      EXPECT_EQ(kmer::reverse_complement(kmer::reverse_complement(kmer, k), k),
                kmer);
    }
  }
}

TEST(Kmer, CanonicalMergesStrands) {
  // "ACG" (k=3): revcomp is "CGT"; both must canonicalize identically.
  std::vector<kmer::kmer_t> fwd, rev;
  kmer::extract_kmers("ACG", 3, fwd);
  kmer::extract_kmers("CGT", 3, rev);
  ASSERT_EQ(fwd.size(), 1u);
  ASSERT_EQ(rev.size(), 1u);
  EXPECT_EQ(fwd[0], rev[0]);
}

TEST(Kmer, ExtractSkipsAmbiguousBases) {
  std::vector<kmer::kmer_t> kmers;
  kmer::extract_kmers("ACGTNACGT", 4, kmers);
  // "ACGT" yields 1 window; the N breaks the run; "ACGT" again yields 1.
  EXPECT_EQ(kmers.size(), 2u);
  kmers.clear();
  kmer::extract_kmers("ACGTACGT", 4, kmers);
  EXPECT_EQ(kmers.size(), 5u);
}

TEST(Bloom, FirstVsSecondOccurrence) {
  kmer::two_layer_bloom_t bloom(10000);
  EXPECT_FALSE(bloom.insert(42));       // first occurrence
  EXPECT_FALSE(bloom.seen_twice(42));   // only once so far
  EXPECT_TRUE(bloom.insert(42));        // second occurrence
  EXPECT_TRUE(bloom.seen_twice(42));
  EXPECT_FALSE(bloom.seen_twice(43));   // never inserted
}

TEST(Bloom, FalsePositiveRateIsSmall) {
  kmer::two_layer_bloom_t bloom(20000, 3, 12);
  for (uint64_t i = 0; i < 10000; ++i) {
    bloom.insert(i);
    bloom.insert(i);
  }
  int false_positives = 0;
  for (uint64_t i = 1000000; i < 1010000; ++i)
    false_positives += bloom.seen_twice(i) ? 1 : 0;
  EXPECT_LT(false_positives, 100);  // < 1%
}

TEST(Bloom, ConcurrentInsertsAllLand) {
  kmer::two_layer_bloom_t bloom(100000, 3, 12);
  constexpr int nthreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&bloom, t] {
      for (uint64_t i = 0; i < 20000; ++i) bloom.insert(i * nthreads + t);
    });
  }
  for (auto& th : threads) th.join();
  // Insert everything again: all must now report seen-twice.
  for (uint64_t i = 0; i < 20000 * nthreads; ++i) {
    bloom.insert(i);
    EXPECT_TRUE(bloom.seen_twice(i));
  }
}

TEST(Hashmap, BasicCounting) {
  kmer::counting_hashmap_t map(1000);
  map.increment(7);
  map.increment(7);
  map.increment(8, 5);
  EXPECT_EQ(map.count(7), 2u);
  EXPECT_EQ(map.count(8), 5u);
  EXPECT_EQ(map.count(9), 0u);
  EXPECT_EQ(map.size(), 2u);
}

TEST(Hashmap, ConcurrentIncrementsAreExact) {
  kmer::counting_hashmap_t map(4096);
  constexpr int nthreads = 4;
  constexpr int per_thread = 20000;
  constexpr int nkeys = 257;
  std::vector<std::thread> threads;
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&map] {
      for (int i = 0; i < per_thread; ++i)
        map.increment(static_cast<kmer::kmer_t>(i % nkeys));
    });
  }
  for (auto& th : threads) th.join();
  uint64_t total = 0;
  for (int key = 0; key < nkeys; ++key) total += map.count(key);
  EXPECT_EQ(total, static_cast<uint64_t>(nthreads) * per_thread);
}

TEST(Hashmap, HistogramMatchesCounts) {
  kmer::counting_hashmap_t map(1000);
  for (int i = 0; i < 10; ++i) map.increment(100 + i);        // count 1
  for (int i = 0; i < 5; ++i) {
    map.increment(200 + i);
    map.increment(200 + i);
  }
  const auto hist = map.histogram(16);
  EXPECT_EQ(hist[1], 10u);
  EXPECT_EQ(hist[2], 5u);
}

TEST(ReadGenerator, DeterministicAndShardable) {
  kmer::genome_params_t params;
  params.genome_length = 10000;
  params.read_length = 50;
  params.coverage = 4;
  kmer::read_generator_t gen_a(params), gen_b(params);
  EXPECT_EQ(gen_a.genome(), gen_b.genome());
  EXPECT_EQ(gen_a.total_reads(), gen_b.total_reads());
  for (std::size_t i : {0ul, 7ul, gen_a.total_reads() - 1}) {
    EXPECT_EQ(gen_a.read(i), gen_b.read(i));
    EXPECT_EQ(gen_a.read(i).size(), params.read_length);
  }
  // Shards tile [0, total) exactly.
  std::size_t covered = 0;
  for (int r = 0; r < 7; ++r) {
    std::size_t begin, end;
    gen_a.shard(r, 7, &begin, &end);
    EXPECT_EQ(begin, covered);
    covered = end;
  }
  EXPECT_EQ(covered, gen_a.total_reads());
}

TEST(ReadGenerator, ErrorRateRoughlyHonored) {
  kmer::genome_params_t params;
  params.genome_length = 50000;
  params.read_length = 100;
  params.coverage = 2;
  params.error_rate = 0.05;
  kmer::read_generator_t gen(params);
  // Count mismatches of read 0..99 against the genome is hard without the
  // position; instead compare error_rate=0 output: those reads must be exact
  // substrings.
  kmer::genome_params_t clean = params;
  clean.error_rate = 0.0;
  kmer::read_generator_t exact(clean);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_NE(exact.genome().find(exact.read(i)), std::string::npos);
  }
}

class KmerPipeline : public ::testing::TestWithParam<kmer::pipeline_mode_t> {};

TEST_P(KmerPipeline, MatchesSerialOracle) {
  kmer::pipeline_config_t config;
  config.genome.genome_length = 20000;
  config.genome.read_length = 80;
  config.genome.coverage = 6;
  config.genome.error_rate = 0.01;
  config.k = 21;
  config.nranks = 2;
  config.nthreads = 2;
  config.mode = GetParam();

  const auto oracle = kmer::run_serial_oracle(config);
  const auto result = kmer::run_pipeline(config);

  // The two-layer Bloom filter admits false positives but no false
  // negatives: every k-mer the oracle counts must be counted identically,
  // and at most a small number of once-only k-mers may slip in.
  ASSERT_GE(result.distinct_counted, oracle.distinct_counted);
  const std::size_t slack = oracle.distinct_counted / 50 + 8;
  EXPECT_LE(result.distinct_counted, oracle.distinct_counted + slack);
  EXPECT_GE(result.total_kmers, oracle.total_kmers);
  // Histogram shape: counts >= 2 must match exactly up to FP slack.
  for (std::size_t c = 3; c < 32; ++c) {
    EXPECT_EQ(result.histogram[c], oracle.histogram[c]) << "count " << c;
  }
}

// The pipeline consumes FASTA files identically to the generator: export
// the synthetic reads, run both paths, compare.
TEST(KmerPipeline, FastaInputMatchesGenerator) {
  kmer::pipeline_config_t config;
  config.genome.genome_length = 8000;
  config.genome.read_length = 80;
  config.genome.coverage = 5;
  config.genome.error_rate = 0.01;
  config.k = 17;
  config.nranks = 2;
  config.nthreads = 2;

  kmer::read_generator_t generator(config.genome);
  std::vector<kmer::sequence_record_t> records;
  for (std::size_t i = 0; i < generator.total_reads(); ++i)
    records.push_back({"r" + std::to_string(i), generator.read(i)});
  const std::string path = "/tmp/lci_repro_kmer_test.fa";
  kmer::write_fasta_file(path, records);

  const auto from_generator = kmer::run_pipeline(config);
  kmer::pipeline_config_t file_config = config;
  file_config.reads_path = path;
  const auto from_file = kmer::run_pipeline(file_config);
  // The concurrent two-layer Bloom filter is deliberately approximate under
  // racing inserts (bloom.hpp), so runs over identical reads may differ by a
  // few false positives; the true counts (>= 2 occurrences) must agree
  // tightly and exactly against the oracle elsewhere.
  const auto diff = [](std::size_t a, std::size_t b) {
    return a > b ? a - b : b - a;
  };
  EXPECT_LE(diff(from_file.distinct_counted, from_generator.distinct_counted),
            8u);
  for (std::size_t c = 2; c < 32; ++c)
    EXPECT_LE(diff(from_file.histogram[c], from_generator.histogram[c]), 2u)
        << "count " << c;
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Modes, KmerPipeline,
                         ::testing::Values(kmer::pipeline_mode_t::lci_mt,
                                           kmer::pipeline_mode_t::gex_mt,
                                           kmer::pipeline_mode_t::ref_st),
                         [](const auto& info) {
                           return kmer::to_string(info.param);
                         });

}  // namespace
