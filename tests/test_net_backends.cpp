// Multi-process backend matrix (net/shm_fabric.cpp, net/tcp_fabric.cpp).
//
// Unlike the rest of the suite these tests cross real process boundaries:
// each test forks + execs N copies of this binary (the same environment
// contract as scripts/launch_local.sh) and the children run one role each —
// eager traffic, rendezvous traffic (which also exercises the registration
// cache), coalesced eager batches, and a SIGKILL of one rank mid-traffic
// with the survivors asserting exactly-once fatal_peer_down. Every scenario
// runs on both shm and tcp.
//
// Not part of tier-1 (label "backend"): tier-1 stays the in-process sim
// suite; CI drives this binary in the dedicated backend legs.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/lci.hpp"

namespace {

// ---------------------------------------------------------------------------
// Child roles. A child process is this same binary with LCI_TEST_CHILD_ROLE
// set; the static runner below intercepts it before gtest sees anything.
// ---------------------------------------------------------------------------

int env_rank() {
  const char* env = std::getenv("LCI_RANK");
  return env != nullptr ? std::atoi(env) : 0;
}

#define CHILD_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "[child rank %d] CHECK failed at %s:%d: %s\n",  \
                   env_rank(), __FILE__, __LINE__, #cond);                 \
      return 1;                                                            \
    }                                                                      \
  } while (0)

// Blocking send with the retry idiom.
void send_blocking(int peer, const void* buf, std::size_t size,
                   lci::tag_t tag) {
  lci::status_t s;
  do {
    s = lci::post_send(peer, const_cast<void*>(buf), size, tag, {});
    lci::progress();
  } while (s.error.is_retry());
}

int child_eager() {
  lci::g_runtime_init();
  const int me = lci::get_rank_me();
  const int peer = 1 - me;
  constexpr int count = 100;
  constexpr std::size_t size = 64;
  lci::comp_t sync = lci::alloc_sync(1);
  char in[size], out[size];
  for (int i = 0; i < count; ++i) {
    std::snprintf(out, size, "msg %d from rank %d", i, me);
    std::memset(in, 0, size);
    lci::status_t rs = lci::post_recv(peer, in, size, /*tag=*/1, sync);
    send_blocking(peer, out, size, 1);
    if (rs.error.is_posted()) lci::sync_wait(sync, &rs);
    CHILD_CHECK(rs.error.is_done());
    char expect[size];
    std::snprintf(expect, size, "msg %d from rank %d", i, peer);
    CHILD_CHECK(std::memcmp(in, expect, std::strlen(expect) + 1) == 0);
  }
  lci::barrier();
  lci::free_comp(&sync);
  lci::g_runtime_fina();
  return 0;
}

int child_rendezvous() {
  lci::g_runtime_init();
  const int me = lci::get_rank_me();
  const int peer = 1 - me;
  constexpr int iters = 8;
  constexpr std::size_t size = 256 * 1024;  // well past the eager threshold
  std::vector<char> in(size), out(size);
  lci::comp_t sync = lci::alloc_sync(1);
  lci::comp_t send_sync = lci::alloc_sync(1);
  for (int i = 0; i < iters; ++i) {
    for (std::size_t j = 0; j < size; j += 1024)
      out[j] = static_cast<char>((i * 31 + me * 7 + j / 1024) & 0x7f);
    std::memset(in.data(), 0, size);
    lci::status_t rs = lci::post_recv(peer, in.data(), size, /*tag=*/2, sync);
    // Rendezvous sends transfer straight out of `out` — wait for the send
    // completion before reusing the buffer next iteration (on the real
    // backends the data leaves asynchronously; sim's synchronous copy would
    // mask the aliasing).
    lci::status_t ss;
    do {
      ss = lci::post_send(peer, out.data(), size, 2, send_sync);
      lci::progress();
    } while (ss.error.is_retry());
    if (ss.error.is_posted()) lci::sync_wait(send_sync, &ss);
    CHILD_CHECK(ss.error.is_done());
    if (rs.error.is_posted()) lci::sync_wait(sync, &rs);
    CHILD_CHECK(rs.error.is_done());
    for (std::size_t j = 0; j < size; j += 1024) {
      const char want = static_cast<char>((i * 31 + peer * 7 + j / 1024) & 0x7f);
      if (in[j] != want)
        std::fprintf(stderr, "[child rank %d] mismatch i=%d j=%zu got=%d want=%d\n",
                     me, i, j, in[j], want);
      CHILD_CHECK(in[j] == want);
    }
  }
  // The receive buffer was re-registered every iteration at the same base and
  // size — from the second transfer on, the registration cache must serve it.
  const lci::counters_t c = lci::get_counters();
  CHILD_CHECK(c.send_rdv >= iters);
  if (lci::get_attr(lci::get_g_runtime()).reg_cache_entries > 0)
    CHILD_CHECK(c.reg_cache_hits >= iters - 1);
  lci::barrier();
  lci::free_comp(&send_sync);
  lci::free_comp(&sync);
  lci::g_runtime_fina();
  return 0;
}

int child_coalesced() {
  lci::g_runtime_init();
  const int me = lci::get_rank_me();
  constexpr int count = 200;
  constexpr std::size_t size = 48;
  if (me == 0) {
    // Explicit per-post aggregation: sub-messages batch into eager_batch
    // wire messages regardless of runtime defaults.
    char out[size];
    for (int i = 0; i < count; ++i) {
      std::snprintf(out, size, "coalesced %d", i);
      lci::status_t s;
      do {
        s = lci::post_send_x(1, out, size, /*tag=*/3, lci::comp_t{})
                .allow_aggregation(true)();
        lci::progress();
      } while (s.error.is_retry());
    }
    // Drain any armed slot (age-based flush) until the peer confirms.
    char ack = 0;
    lci::comp_t sync = lci::alloc_sync(1);
    lci::status_t rs = lci::post_recv(1, &ack, 1, /*tag=*/4, sync);
    if (rs.error.is_posted()) lci::sync_wait(sync, &rs);
    CHILD_CHECK(ack == 'k');
    lci::free_comp(&sync);
  } else {
    char in[size];
    lci::comp_t sync = lci::alloc_sync(1);
    for (int i = 0; i < count; ++i) {
      std::memset(in, 0, size);
      lci::status_t rs = lci::post_recv(0, in, size, /*tag=*/3, sync);
      if (rs.error.is_posted()) lci::sync_wait(sync, &rs);
      CHILD_CHECK(rs.error.is_done());
      char expect[size];
      std::snprintf(expect, size, "coalesced %d", i);  // FIFO per (rank, tag)
      CHILD_CHECK(std::memcmp(in, expect, std::strlen(expect) + 1) == 0);
    }
    const char ack = 'k';
    send_blocking(0, &ack, 1, 4);
  }
  lci::barrier();
  lci::g_runtime_fina();
  return 0;
}

// Rank 1 raises SIGKILL mid-traffic; the survivors (0 and 2) assert that
//  * a parked receive from the victim completes exactly once, with
//    fatal_peer_down,
//  * posts naming the victim stop succeeding (fatal_peer_down, returned not
//    thrown) within a bounded number of attempts,
//  * the fabric still works between the survivors afterwards.
int child_kill() {
  lci::g_runtime_init();
  const int me = lci::get_rank_me();
  if (me == 1) {
    // Victim: spray a little eager traffic at both survivors, then die
    // without a goodbye (some frames may still sit in transport buffers).
    char out[64];
    for (int i = 0; i < 10; ++i) {
      std::snprintf(out, sizeof(out), "doomed %d", i);
      send_blocking(0, out, sizeof(out), 5);
      send_blocking(2, out, sizeof(out), 5);
    }
    raise(SIGKILL);
    return 9;  // unreachable
  }
  const int buddy = me == 0 ? 2 : 0;
  // Parked receive the victim will never satisfy.
  char parked[64];
  lci::comp_t parked_sync = lci::alloc_sync(1);
  lci::status_t parked_rs =
      lci::post_recv(1, parked, sizeof(parked), /*tag=*/99, parked_sync);
  CHILD_CHECK(parked_rs.error.is_posted());
  // Drain the victim's pre-death traffic (each message completes done; once
  // the death is observed, the remaining parked receives turn peer_down).
  lci::comp_t sync = lci::alloc_sync(1);
  int delivered = 0, failed = 0;
  for (int i = 0; i < 10; ++i) {
    char in[64] = {};
    lci::status_t rs = lci::post_recv(1, in, sizeof(in), /*tag=*/5, sync);
    if (rs.error.is_posted()) lci::sync_wait(sync, &rs);
    if (rs.error.is_done())
      ++delivered;
    else if (rs.error.code == lci::errorcode_t::fatal_peer_down)
      ++failed;
    else
      CHILD_CHECK(false);
  }
  CHILD_CHECK(delivered + failed == 10);
  // Posts naming the victim must start failing with fatal_peer_down.
  bool saw_peer_down = false;
  char probe[64] = "are you there";
  for (int i = 0; i < 20000 && !saw_peer_down; ++i) {
    lci::status_t s =
        lci::post_send(1, probe, sizeof(probe), /*tag=*/6, lci::comp_t{});
    lci::progress();
    if (s.error.code == lci::errorcode_t::fatal_peer_down) saw_peer_down = true;
    if (s.error.is_retry() || i % 16 == 0) usleep(1000);
  }
  CHILD_CHECK(saw_peer_down);
  // Exactly once: the parked receive has fired (or fires now) with
  // fatal_peer_down — sync_wait returns a single completion.
  lci::sync_wait(parked_sync, &parked_rs);
  CHILD_CHECK(parked_rs.error.code == lci::errorcode_t::fatal_peer_down);
  // The survivors can still talk to each other.
  char in[64] = {}, out[64];
  std::snprintf(out, sizeof(out), "still alive (rank %d)", me);
  lci::status_t rs = lci::post_recv(buddy, in, sizeof(in), /*tag=*/7, sync);
  send_blocking(buddy, out, sizeof(out), 7);
  if (rs.error.is_posted()) lci::sync_wait(sync, &rs);
  CHILD_CHECK(rs.error.is_done());
  char expect[64];
  std::snprintf(expect, sizeof(expect), "still alive (rank %d)", buddy);
  CHILD_CHECK(std::memcmp(in, expect, std::strlen(expect) + 1) == 0);
  const lci::counters_t c = lci::get_counters();
  CHILD_CHECK(c.peer_down_completions >= 1);
  lci::free_comp(&parked_sync);
  lci::free_comp(&sync);
  lci::g_runtime_fina();
  return 0;
}

int run_child(const std::string& role) {
  if (role == "eager") return child_eager();
  if (role == "rendezvous") return child_rendezvous();
  if (role == "coalesced") return child_coalesced();
  if (role == "kill") return child_kill();
  std::fprintf(stderr, "unknown child role: %s\n", role.c_str());
  return 2;
}

// Runs before main(): children never reach gtest.
struct child_runner_t {
  child_runner_t() {
    const char* role = std::getenv("LCI_TEST_CHILD_ROLE");
    if (role == nullptr) return;
    std::_Exit(run_child(role));
  }
} child_runner_;

// ---------------------------------------------------------------------------
// Parent-side launcher (the in-process analogue of scripts/launch_local.sh).
// ---------------------------------------------------------------------------

struct launch_result_t {
  std::vector<int> exit_codes;   // -1 when the rank died of a signal
  std::vector<int> term_signals;  // 0 when the rank exited normally
};

launch_result_t launch(const std::string& backend, int nranks,
                       const std::string& role) {
  char tmpl[] = "/tmp/lci-test-job.XXXXXX";
  const char* dir = mkdtemp(tmpl);
  if (dir == nullptr) throw std::runtime_error("mkdtemp failed");
  const std::string job_dir = dir;
  const std::string job_id =
      "test" + std::to_string(static_cast<unsigned>(::getpid())) +
      job_dir.substr(job_dir.size() - 6);
  std::vector<pid_t> pids;
  for (int r = 0; r < nranks; ++r) {
    const pid_t pid = fork();
    if (pid == 0) {
      setenv("LCI_BACKEND", backend.c_str(), 1);
      setenv("LCI_RANK", std::to_string(r).c_str(), 1);
      setenv("LCI_NRANKS", std::to_string(nranks).c_str(), 1);
      setenv("LCI_JOB_DIR", job_dir.c_str(), 1);
      setenv("LCI_JOB_ID", job_id.c_str(), 1);
      setenv("LCI_TEST_CHILD_ROLE", role.c_str(), 1);
      execl("/proc/self/exe", "test_net_backends_child",
            static_cast<char*>(nullptr));
      _exit(127);
    }
    pids.push_back(pid);
  }
  launch_result_t result;
  for (const pid_t pid : pids) {
    int status = 0;
    waitpid(pid, &status, 0);
    result.exit_codes.push_back(WIFEXITED(status) ? WEXITSTATUS(status) : -1);
    result.term_signals.push_back(WIFSIGNALED(status) ? WTERMSIG(status) : 0);
  }
  const std::string rm = "rm -rf " + job_dir;
  std::system(rm.c_str());
  const std::string shm = "/dev/shm/lci-" + job_id;
  ::unlink(shm.c_str());
  return result;
}

class NetBackends : public ::testing::TestWithParam<const char*> {};

TEST_P(NetBackends, Eager) {
  const launch_result_t r = launch(GetParam(), 2, "eager");
  EXPECT_EQ(r.exit_codes, (std::vector<int>{0, 0}));
}

TEST_P(NetBackends, Rendezvous) {
  const launch_result_t r = launch(GetParam(), 2, "rendezvous");
  EXPECT_EQ(r.exit_codes, (std::vector<int>{0, 0}));
}

TEST_P(NetBackends, Coalesced) {
  const launch_result_t r = launch(GetParam(), 2, "coalesced");
  EXPECT_EQ(r.exit_codes, (std::vector<int>{0, 0}));
}

TEST_P(NetBackends, KillMidTraffic) {
  const launch_result_t r = launch(GetParam(), 3, "kill");
  EXPECT_EQ(r.exit_codes[0], 0);
  EXPECT_EQ(r.exit_codes[2], 0);
  EXPECT_EQ(r.term_signals[1], SIGKILL);  // the victim died of the signal
}

INSTANTIATE_TEST_SUITE_P(Backends, NetBackends,
                         ::testing::Values("shm", "tcp"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
