// Unit tests for the concurrency building blocks (paper Sec. 4.1 prereqs).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "util/backoff.hpp"
#include "util/inline_vector.hpp"
#include "util/lcrq.hpp"
#include "util/mpmc_array.hpp"
#include "util/mpmc_ring.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"
#include "util/steal_deque.hpp"
#include "util/thread.hpp"

namespace {

// ---------------------------------------------------------------------------
// spinlock / try-lock wrapper
// ---------------------------------------------------------------------------

TEST(Spinlock, MutualExclusion) {
  lci::util::spinlock_t lock;
  long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        std::lock_guard<lci::util::spinlock_t> guard(lock);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 40000);
}

TEST(Spinlock, TryLockFailsWhenHeld) {
  lci::util::spinlock_t lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(TryLockWrapper, GuardSemantics) {
  lci::util::try_lock_wrapper_t wrapper;
  {
    auto guard = wrapper.guard();
    EXPECT_TRUE(static_cast<bool>(guard));
    auto second = wrapper.guard();
    EXPECT_FALSE(static_cast<bool>(second));  // miss => retry error upstream
  }
  // Released on scope exit.
  auto again = wrapper.guard();
  EXPECT_TRUE(static_cast<bool>(again));
}

TEST(TryLockWrapper, GuardMoveTransfersOwnership) {
  lci::util::try_lock_wrapper_t wrapper;
  auto guard = wrapper.guard();
  ASSERT_TRUE(static_cast<bool>(guard));
  auto moved = std::move(guard);
  EXPECT_TRUE(static_cast<bool>(moved));
  EXPECT_FALSE(static_cast<bool>(guard));  // NOLINT(bugprone-use-after-move)
  EXPECT_FALSE(static_cast<bool>(wrapper.guard()));  // still held by `moved`
}

// ---------------------------------------------------------------------------
// MPMC array (Sec. 4.1.1)
// ---------------------------------------------------------------------------

TEST(MpmcArray, PushBackAndGet) {
  lci::util::mpmc_array_t<int*> array(2);
  int values[10];
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(array.push_back(&values[i]), static_cast<std::size_t>(i));
  EXPECT_EQ(array.size(), 10u);
  EXPECT_GE(array.capacity(), 10u);  // doubled from 2
  for (int i = 0; i < 10; ++i) EXPECT_EQ(array.get(i), &values[i]);
}

TEST(MpmcArray, PutOverwrites) {
  lci::util::mpmc_array_t<int*> array(4);
  int a = 1, b = 2;
  array.push_back(&a);
  array.put(0, &b);
  EXPECT_EQ(array.get(0), &b);
  array.put(0, nullptr);
  EXPECT_EQ(array.get(0), nullptr);
}

TEST(MpmcArray, PutExtendGrows) {
  lci::util::mpmc_array_t<int*> array(2);
  int v = 7;
  array.put_extend(100, &v);
  EXPECT_GE(array.size(), 101u);
  EXPECT_EQ(array.get(100), &v);
  EXPECT_EQ(array.get(50), nullptr);  // untouched slots default-initialize
}

// Readers race with appends (and therefore resizes); deferred reclamation
// must keep every observed snapshot valid.
TEST(MpmcArray, ConcurrentReadDuringResize) {
  lci::util::mpmc_array_t<int*> array(2);
  std::vector<std::unique_ptr<int>> storage;
  for (int i = 0; i < 1000; ++i) storage.push_back(std::make_unique<int>(i));

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    lci::util::xoshiro256_t rng(1);
    while (!stop.load(std::memory_order_acquire)) {
      const std::size_t size = array.size();
      if (size == 0) continue;
      const std::size_t index = rng.below(size);
      int* p = array.get(index);
      ASSERT_NE(p, nullptr);
      ASSERT_EQ(*p, static_cast<int>(index));  // slot content is stable
    }
  });
  for (int i = 0; i < 1000; ++i) array.push_back(storage[i].get());
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(array.size(), 1000u);
}

// ---------------------------------------------------------------------------
// Bounded MPMC ring (the FAA-array completion queue, Sec. 4.1.4)
// ---------------------------------------------------------------------------

TEST(MpmcRing, FifoWhenSequential) {
  lci::util::mpmc_ring_t<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full
  for (int i = 0; i < 8; ++i) {
    auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.try_pop().has_value());  // empty
}

TEST(MpmcRing, WrapsAround) {
  lci::util::mpmc_ring_t<int> ring(4);
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(ring.try_push(round));
    auto v = ring.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, round);
  }
}

TEST(MpmcRing, MoveOnlyElements) {
  lci::util::mpmc_ring_t<std::unique_ptr<int>> ring(4);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(5)));
  auto v = ring.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

TEST(MpmcRing, DestructorReleasesRemainingElements) {
  auto counter = std::make_shared<int>(0);
  struct probe_t {
    std::shared_ptr<int> c;
    ~probe_t() {
      if (c) ++*c;
    }
    probe_t(std::shared_ptr<int> p) : c(std::move(p)) {}
    probe_t(probe_t&&) = default;
    probe_t& operator=(probe_t&&) = default;
  };
  {
    lci::util::mpmc_ring_t<probe_t> ring(8);
    ring.try_push(probe_t(counter));
    ring.try_push(probe_t(counter));
  }
  EXPECT_EQ(*counter, 2);
}

TEST(MpmcRing, ConcurrentSum) {
  lci::util::mpmc_ring_t<int> ring(1024);
  constexpr int producers = 2, consumers = 2, per = 20000;
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&] {
      for (int i = 1; i <= per; ++i) {
        while (!ring.try_push(i)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < consumers; ++c) {
    threads.emplace_back([&] {
      while (popped.load() < producers * per) {
        if (auto v = ring.try_pop()) {
          sum.fetch_add(*v);
          popped.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(sum.load(), static_cast<long>(producers) * per * (per + 1) / 2);
}

// ---------------------------------------------------------------------------
// LCRQ-style unbounded queue
// ---------------------------------------------------------------------------

TEST(Lcrq, GrowsAcrossSegments) {
  lci::util::lcrq_t<int> queue(4);
  for (int i = 0; i < 100; ++i) queue.push(i);
  EXPECT_GT(queue.segment_count(), 1u);
  EXPECT_EQ(queue.size_approx(), 100u);
  std::multiset<int> seen;
  while (auto v = queue.try_pop()) seen.insert(*v);
  EXPECT_EQ(seen.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(seen.count(i), 1u);
}

TEST(Lcrq, SpscFifo) {
  lci::util::lcrq_t<int> queue(8);
  std::thread producer([&] {
    for (int i = 0; i < 50000; ++i) queue.push(i);
  });
  int expect = 0;
  while (expect < 50000) {
    if (auto v = queue.try_pop()) {
      ASSERT_EQ(*v, expect);
      ++expect;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(queue.empty_approx());
}

TEST(Lcrq, MpmcNoLossNoDuplication) {
  lci::util::lcrq_t<long> queue(16);
  constexpr int producers = 3, consumers = 3;
  constexpr long per = 20000;
  std::vector<std::atomic<int>> seen(producers * per);
  for (auto& s : seen) s.store(0);
  std::atomic<long> total{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (long i = 0; i < per; ++i) queue.push(p * per + i);
    });
  }
  for (int c = 0; c < consumers; ++c) {
    threads.emplace_back([&] {
      while (total.load() < producers * per) {
        if (auto v = queue.try_pop()) {
          seen[static_cast<std::size_t>(*v)].fetch_add(1);
          total.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

// ---------------------------------------------------------------------------
// inline_vector
// ---------------------------------------------------------------------------

TEST(InlineVector, PushAndCapacity) {
  lci::util::inline_vector_t<int, 3> v;
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.try_push_back(1));
  EXPECT_TRUE(v.try_push_back(2));
  EXPECT_TRUE(v.try_push_back(3));
  EXPECT_TRUE(v.full());
  EXPECT_FALSE(v.try_push_back(4));
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[2], 3);
}

TEST(InlineVector, EraseUnordered) {
  lci::util::inline_vector_t<int, 4> v;
  for (int i = 1; i <= 4; ++i) v.push_back(i);
  v.erase_unordered(0);  // last element moves into slot 0
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 4);
}

TEST(InlineVector, EraseOrdered) {
  lci::util::inline_vector_t<int, 4> v;
  for (int i = 1; i <= 4; ++i) v.push_back(i);
  v.erase_ordered(1);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 3);
  EXPECT_EQ(v[2], 4);
}

TEST(InlineVector, DestroysElements) {
  int alive = 0;
  struct probe_t {
    int* alive;
    explicit probe_t(int* a) : alive(a) { ++*alive; }
    probe_t(const probe_t& other) : alive(other.alive) { ++*alive; }
    probe_t& operator=(const probe_t&) = default;
    ~probe_t() { --*alive; }
  };
  {
    lci::util::inline_vector_t<probe_t, 2> v;
    v.push_back(probe_t(&alive));
    v.push_back(probe_t(&alive));
    EXPECT_EQ(alive, 2);
  }
  EXPECT_EQ(alive, 0);  // every constructed element destroyed
}

// ---------------------------------------------------------------------------
// steal_deque (packet-pool substrate, Sec. 4.1.2)
// ---------------------------------------------------------------------------

TEST(StealDeque, LifoAtTail) {
  lci::util::steal_deque_t<int> deque(4);
  for (int i = 1; i <= 3; ++i) deque.push_tail(i);
  int out;
  ASSERT_TRUE(deque.pop_tail(&out));
  EXPECT_EQ(out, 3);  // tail is the hot end
  ASSERT_TRUE(deque.pop_tail(&out));
  EXPECT_EQ(out, 2);
}

TEST(StealDeque, StealTakesOldestHalf) {
  lci::util::steal_deque_t<int> deque(4);
  for (int i = 1; i <= 4; ++i) deque.push_tail(i);
  std::vector<int> stolen;
  EXPECT_EQ(deque.try_steal_half(stolen), 2u);
  EXPECT_EQ(stolen, (std::vector<int>{1, 2}));  // head = cold/oldest end
  EXPECT_EQ(deque.size_approx(), 2u);
}

TEST(StealDeque, GrowsPastInitialCapacity) {
  lci::util::steal_deque_t<int> deque(2);
  for (int i = 0; i < 100; ++i) deque.push_tail(i);
  EXPECT_EQ(deque.size_approx(), 100u);
  int out;
  for (int i = 99; i >= 0; --i) {
    ASSERT_TRUE(deque.pop_tail(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(deque.pop_tail(&out));
}

TEST(StealDeque, ConcurrentOwnerAndThieves) {
  lci::util::steal_deque_t<int> deque(8);
  constexpr int items = 50000;
  std::atomic<long> balance{0};  // pushes - (pops + steals)
  std::thread owner([&] {
    int out;
    for (int i = 0; i < items; ++i) {
      deque.push_tail(i);
      balance.fetch_add(1);
      if (i % 3 == 0 && deque.pop_tail(&out)) balance.fetch_sub(1);
    }
  });
  std::atomic<bool> stop{false};
  std::thread thief([&] {
    std::vector<int> loot;
    while (!stop.load()) {
      loot.clear();
      const std::size_t n = deque.try_steal_half(loot);
      balance.fetch_sub(static_cast<long>(n));
      std::this_thread::yield();
    }
  });
  owner.join();
  stop.store(true);
  thief.join();
  int out;
  long remaining = 0;
  while (deque.pop_tail(&out)) ++remaining;
  EXPECT_EQ(remaining, balance.load());
}

// ---------------------------------------------------------------------------
// RNG and thread ids
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicBySeed) {
  lci::util::xoshiro256_t a(7), b(7), c(8);
  bool all_equal = true, any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a(), vb = b(), vc = c();
    all_equal &= (va == vb);
    any_diff |= (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowStaysInRange) {
  lci::util::xoshiro256_t rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(ThreadId, DenseAndStable) {
  const std::size_t mine = lci::util::thread_id();
  EXPECT_EQ(lci::util::thread_id(), mine);  // stable per thread
  std::set<std::size_t> ids;
  std::mutex lock;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      const std::size_t id = lci::util::thread_id();
      std::lock_guard<std::mutex> guard(lock);
      ids.insert(id);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ids.size(), 8u);  // all distinct
  EXPECT_EQ(ids.count(mine), 0u);
  EXPECT_GT(lci::util::thread_id_bound(), mine);
}

}  // namespace

// ---------------------------------------------------------------------------
// Logging facility
// ---------------------------------------------------------------------------

#include "util/log.hpp"

namespace {

TEST(Log, LevelsGate) {
  const auto original = lci::util::log_level();
  lci::util::set_log_level(lci::util::log_level_t::warn);
  EXPECT_TRUE(lci::util::log_enabled(lci::util::log_level_t::error));
  EXPECT_TRUE(lci::util::log_enabled(lci::util::log_level_t::warn));
  EXPECT_FALSE(lci::util::log_enabled(lci::util::log_level_t::info));
  EXPECT_FALSE(lci::util::log_enabled(lci::util::log_level_t::trace));
  lci::util::set_log_level(lci::util::log_level_t::none);
  EXPECT_FALSE(lci::util::log_enabled(lci::util::log_level_t::error));
  lci::util::set_log_level(original);
}

TEST(Log, NamesRoundTrip) {
  using lci::util::log_level_name;
  using lci::util::log_level_t;
  EXPECT_STREQ(log_level_name(log_level_t::error), "error");
  EXPECT_STREQ(log_level_name(log_level_t::trace), "trace");
  EXPECT_STREQ(log_level_name(log_level_t::none), "none");
}

}  // namespace
