// Pingpong: round-trip latency between rank 0 and rank 1, runnable on every
// backend.
//
// Single-process (sim, the default): spawns two simulated ranks, exactly like
// quickstart.
//
// Multi-process (shm / tcp): run under the local launcher, which provides the
// bootstrap environment —
//   scripts/launch_local.sh -n 2 -b shm -- ./build/examples/pingpong
//   scripts/launch_local.sh -n 4 -b tcp -- ./build/examples/pingpong
// Ranks beyond the first two only participate in the closing barrier.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/lci.hpp"

namespace {

void run_rank() {
  lci::g_runtime_init();
  const int me = lci::get_rank_me();
  const int nranks = lci::get_rank_n();

  if (nranks >= 2 && me < 2) {
    const int peer = 1 - me;
    const std::size_t sizes[] = {8, 512, 4096, 65536};  // eager -> rendezvous
    const int warmup = 10, iters = 200;
    for (const std::size_t size : sizes) {
      std::vector<char> out(size, static_cast<char>('a' + me));
      std::vector<char> in(size, 0);
      lci::comp_t sync = lci::alloc_sync(1);
      lci::comp_t send_sync = lci::alloc_sync(1);
      auto start = std::chrono::steady_clock::now();
      for (int i = -warmup; i < iters; ++i) {
        if (i == 0) start = std::chrono::steady_clock::now();
        auto roundtrip = [&](bool send_first) {
          lci::status_t recv_status =
              lci::post_recv(peer, in.data(), size, /*tag=*/3, sync);
          // Rendezvous sends hand `out` to the transport until the send
          // completion fires — wait for it before the buffer is reused (or
          // freed at the end of the size sweep).
          auto send = [&] {
            lci::status_t s;
            do {
              s = lci::post_send(peer, out.data(), size, 3, send_sync);
              lci::progress();
            } while (s.error.is_retry());
            if (s.error.is_posted()) lci::sync_wait(send_sync, &s);
          };
          if (send_first) send();
          if (recv_status.error.is_posted())
            lci::sync_wait(sync, &recv_status);
          if (!send_first) send();
        };
        roundtrip(me == 0);
      }
      const auto elapsed = std::chrono::steady_clock::now() - start;
      if (me == 0) {
        const double us =
            std::chrono::duration<double, std::micro>(elapsed).count() / iters;
        std::printf("pingpong %8zu B : %8.2f us/roundtrip\n", size, us);
      }
      if (std::memcmp(in.data(), out.data(), size) == 0 && size > 0) {
        std::fprintf(stderr, "pingpong: rank %d received its own pattern\n",
                     me);
        std::exit(1);
      }
      lci::free_comp(&send_sync);
      lci::free_comp(&sync);
    }
  }

  lci::barrier();
  lci::g_runtime_fina();
}

}  // namespace

int main() {
  const char* nranks_env = std::getenv("LCI_NRANKS");
  if (nranks_env != nullptr && std::atoi(nranks_env) > 1) {
    run_rank();  // one rank of a multi-process job (launch_local.sh)
  } else {
    lci::sim::spawn(2, [](int) { run_rank(); });
  }
  return 0;
}
