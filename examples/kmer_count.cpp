// k-mer counting example: the HipMer-style mini-app (paper Sec. 5.3) as a
// command-line tool over synthetic reads.
//
//   ./kmer_count [mode] [nranks] [nthreads] [genome_bp] [k] [reads.fa]
//     mode: lci_mt (default) | gex_mt | ref_st
//     with a 6th argument, reads come from that FASTA/FASTQ file instead of
//     the synthetic generator
//
// Prints the k-mer occurrence histogram and cross-checks it against the
// serial oracle.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "kmer/pipeline.hpp"

int main(int argc, char** argv) {
  kmer::pipeline_config_t config;
  config.mode = kmer::pipeline_mode_t::lci_mt;
  if (argc > 1) {
    const std::string mode = argv[1];
    if (mode == "gex_mt")
      config.mode = kmer::pipeline_mode_t::gex_mt;
    else if (mode == "ref_st")
      config.mode = kmer::pipeline_mode_t::ref_st;
    else if (mode != "lci_mt") {
      std::fprintf(stderr, "unknown mode %s\n", mode.c_str());
      return 1;
    }
  }
  config.nranks = argc > 2 ? std::atoi(argv[2]) : 2;
  config.nthreads = argc > 3 ? std::atoi(argv[3]) : 2;
  config.genome.genome_length =
      argc > 4 ? static_cast<std::size_t>(std::atol(argv[4])) : 100000;
  config.k = argc > 5 ? std::atoi(argv[5]) : 21;
  if (argc > 6) config.reads_path = argv[6];
  config.genome.coverage = 8;
  config.genome.error_rate = 0.01;

  std::printf(
      "k-mer counting: mode=%s ranks=%d threads/rank=%d genome=%zubp k=%d "
      "coverage=%.0fx error=%.2f\n",
      kmer::to_string(config.mode), config.nranks, config.nthreads,
      config.genome.genome_length, config.k, config.genome.coverage,
      config.genome.error_rate);

  const auto result = kmer::run_pipeline(config);
  std::printf("counted %zu distinct k-mers (seen >= twice), %zu instances, "
              "in %.3f s (%.2f Mk-mers/s)\n",
              result.distinct_counted, result.total_kmers, result.seconds,
              static_cast<double>(result.total_kmers) / result.seconds / 1e6);

  std::printf("\noccurrences  #k-mers\n");
  for (std::size_t c = 2; c < result.histogram.size() && c <= 20; ++c) {
    if (result.histogram[c] != 0)
      std::printf("%11zu  %zu\n", c, result.histogram[c]);
  }

  const auto oracle = kmer::run_serial_oracle(config);
  std::printf("\nserial oracle: %zu distinct / %zu instances -> %s\n",
              oracle.distinct_counted, oracle.total_kmers,
              result.distinct_counted >= oracle.distinct_counted &&
                      result.distinct_counted <=
                          oracle.distinct_counted +
                              oracle.distinct_counted / 50 + 8
                  ? "MATCH (within Bloom false-positive slack)"
                  : "MISMATCH");
  return 0;
}
