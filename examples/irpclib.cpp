// iRPCLib — the paper's Listing 2, executable.
//
// The worked example of Sec. 3.2: an LCI backend for an imaginary RPC
// library. The upper layer registers RPC handlers by index and serializes
// arguments; the backend layer (below) ships (index, payload) to the target
// rank and delivers incoming RPCs back up. All threads produce and consume
// communication and periodically call do_background_work().
//
// The code follows Listing 2 line by line — shared send-completion handler,
// shared receive completion queue + rcomp, one device per thread, and the
// done/posted/retry triage in send_msg — with one adaptation: the listing's
// process-global variables live in a per-rank struct here, because simulated
// ranks share one OS process (a real deployment has one process per rank, so
// the listing's globals are naturally per-rank).
#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "core/lci.hpp"

struct irpclib_t {
  // shared resources (per rank)
  lci::comp_t shandler;  // send completion handler
  lci::comp_t rcq;       // receive completion queue
  lci::rcomp_t rcomp;    // remote completion handle for rcq
  // thread-local resources
  static thread_local lci::device_t device;

  // callback for source-side completion
  static void send_cb(const lci::status_t& status) {
    // free the message buffer once the send is done
    std::free(status.buffer.base);
  }

  void global_init(int* rank_me, int* rank_n) {
    lci::g_runtime_init();
    *rank_me = lci::get_rank_me();
    *rank_n = lci::get_rank_n();
    shandler = lci::alloc_handler(send_cb);
    rcq = lci::alloc_cq();
    rcomp = lci::register_rcomp(rcq);
  }

  void global_fina() {
    lci::deregister_rcomp(rcomp);
    lci::free_comp(&shandler);
    lci::free_comp(&rcq);
    lci::g_runtime_fina();
  }

  void thread_init() { device = lci::alloc_device(); }

  void thread_fina() { lci::free_device(&device); }

  bool send_msg(int rank, void* buf, std::size_t s, lci::tag_t tag) {
    lci::status_t status = lci::post_am_x(rank, buf, s, shandler, rcomp)
                               .tag(tag)
                               .device(device)();
    if (status.error.is_retry())
      return false;  // the send failed temporarily
    if (status.error.is_done())
      send_cb(status);  // the send immediately completed
    else
      assert(status.error.is_posted());
    return true;  // the send succeeded
  }

  // msg_t is a message descriptor type defined in the upper layer
  struct msg_t {
    int rank;
    lci::tag_t tag;
    void* buf;
    std::size_t size;
  };

  bool poll_msg(msg_t* msg) {
    lci::status_t status = lci::cq_pop(rcq);
    if (status.error.is_done()) {
      lci::buffer_t buf = status.get_buffer();
      *msg = {
          status.rank,
          status.tag,
          buf.base,
          buf.size,
      };
      // the upper layer is responsible for freeing the
      // buffer once it consumes the message
      return true;
    }
    assert(status.error.is_retry());
    return false;
  }

  bool do_background_work() {
    return lci::progress_x().device(device)();
  }
};

thread_local lci::device_t irpclib_t::device;

// ---- upper layer: a tiny demo RPC application ------------------------------
//
// RPC 0: "greet" — prints the payload.  RPC 1: "add" — sums two ints and
// prints the result. The RPC index travels in the LCI tag field.

int main() {
  constexpr int nranks = 2;
  constexpr int nthreads = 3;
  constexpr int rpcs_per_thread = 5;

  lci::sim::spawn(nranks, [&](int) {
    irpclib_t backend;
    int rank_me = 0, rank_n = 0;
    backend.global_init(&rank_me, &rank_n);
    const int peer = (rank_me + 1) % rank_n;
    std::atomic<int> served{0};
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    const int expect_served = nthreads * rpcs_per_thread;

    auto binding = lci::sim::current_binding();
    std::vector<std::thread> threads;
    for (int t = 0; t < nthreads; ++t) {
      threads.emplace_back([&, t] {
        lci::sim::scoped_binding_t bound(binding);
        backend.thread_init();
        // Devices steer incoming traffic: wait until every thread on every
        // rank has allocated its device before the first send, or early
        // messages would land on devices nobody progresses.
        ready.fetch_add(1, std::memory_order_release);
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        int sent = 0;
        while (sent < rpcs_per_thread ||
               served.load(std::memory_order_relaxed) < expect_served) {
          if (sent < rpcs_per_thread) {
            // Serialize an RPC: alternate between greet and add.
            const bool greet = (sent % 2) == 0;
            char* payload = nullptr;
            std::size_t size = 0;
            if (greet) {
              size = 64;
              payload = static_cast<char*>(std::malloc(size));
              snprintf(payload, size, "greetings from rank %d thread %d",
                       rank_me, t);
            } else {
              size = 2 * sizeof(int);
              payload = static_cast<char*>(std::malloc(size));
              const int args[2] = {rank_me * 100, t};
              std::memcpy(payload, args, size);
            }
            if (backend.send_msg(peer, payload, size, greet ? 0 : 1))
              ++sent;
            else
              std::free(payload);  // retry later with a fresh buffer
          }
          backend.do_background_work();
          irpclib_t::msg_t msg;
          while (backend.poll_msg(&msg)) {
            if (msg.tag == 0) {
              std::printf("[rank %d] greet rpc from %d: \"%s\"\n", rank_me,
                          msg.rank, static_cast<char*>(msg.buf));
            } else {
              int args[2];
              std::memcpy(args, msg.buf, sizeof(args));
              std::printf("[rank %d] add rpc from %d: %d + %d = %d\n",
                          rank_me, msg.rank, args[0], args[1],
                          args[0] + args[1]);
            }
            std::free(msg.buf);
            served.fetch_add(1, std::memory_order_relaxed);
          }
        }
        // Drain until the peer is done consuming our RPCs too.
        for (int i = 0; i < 500; ++i) backend.do_background_work();
        backend.thread_fina();
      });
    }
    // Release the workers once all ranks finished device setup.
    while (ready.load(std::memory_order_acquire) != nthreads)
      std::this_thread::yield();
    lci::barrier();  // cross-rank: everyone's devices exist
    go.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();
    lci::barrier();
    backend.global_fina();
  });
  return 0;
}
