// RMA example: a distributed fixed-slot key-value store built on LCI's
// one-sided primitives.
//
// Each rank exposes a registered window of slots; a key hashes to an owner
// rank and a slot. Writers publish entries with *put-with-signal* — the RDMA
// write delivers the record and the attached notification tells the owner a
// slot changed (the owner tracks a change log without polling memory).
// Readers use plain *get* to fetch any slot from anywhere, with no
// involvement of the owner's CPU beyond progress.
//
//   ./rma_kvstore [nranks] [writes_per_rank]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/lci.hpp"

namespace {

struct record_t {
  uint64_t key = 0;
  uint64_t value = 0;
  uint64_t version = 0;  // 0 = empty
};

constexpr std::size_t slots_per_rank = 256;

uint64_t mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return x;
}

}  // namespace

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const int writes = argc > 2 ? std::atoi(argv[2]) : 64;

  lci::sim::spawn(nranks, [&](int rank) {
    lci::g_runtime_init();
    const int n = lci::get_rank_n();

    // The window: every rank's slots, registered for remote access.
    std::vector<record_t> window(slots_per_rank);
    lci::mr_t mr =
        lci::register_memory(window.data(), window.size() * sizeof(record_t));
    lci::rmr_t my_rmr = lci::get_rmr(mr);

    // Exchange window tokens (the out-of-band step PMI would provide).
    std::vector<lci::rmr_t> rmrs(static_cast<std::size_t>(n));
    lci::allgather(&my_rmr, rmrs.data(), sizeof(lci::rmr_t));

    // Change notifications arrive on a completion queue via put-with-signal.
    lci::comp_t change_cq = lci::alloc_cq();
    const lci::rcomp_t change_rcomp = lci::register_rcomp(change_cq);
    lci::barrier();

    // ---- publish phase: every rank writes `writes` records -------------
    lci::comp_t wsync = lci::alloc_sync(1);
    for (int i = 0; i < writes; ++i) {
      record_t record;
      record.key = mix(static_cast<uint64_t>(rank) << 32 | i);
      record.value = record.key * 3;
      record.version = 1;
      const int owner = static_cast<int>(record.key % static_cast<uint64_t>(n));
      const std::size_t slot = mix(record.key) % slots_per_rank;
      lci::status_t status;
      do {
        status = lci::post_put_x(owner, &record, sizeof(record), wsync,
                                 rmrs[static_cast<std::size_t>(owner)],
                                 slot * sizeof(record_t))
                     .remote_comp(change_rcomp)
                     .tag(static_cast<lci::tag_t>(slot & 0x7fff))();
        lci::progress();
      } while (status.error.is_retry());
      if (status.error.is_posted()) lci::sync_wait(wsync, nullptr);
    }

    // Count change notifications for our window while everyone publishes.
    // (Totals across ranks must equal total writes.)
    int notifications = 0;
    lci::barrier();  // all puts issued; drain what targeted us
    for (int spin = 0; spin < 2000; ++spin) {
      lci::progress();
      lci::status_t s = lci::cq_pop(change_cq);
      if (s.error.is_done()) ++notifications;
    }
    std::printf("[rank %d] %d change notifications for my window\n", rank,
                notifications);

    // ---- read phase: fetch back and verify our own records -------------
    lci::comp_t gsync = lci::alloc_sync(1);
    int verified = 0, overwritten = 0;
    for (int i = 0; i < writes; ++i) {
      const uint64_t key = mix(static_cast<uint64_t>(rank) << 32 | i);
      const int owner = static_cast<int>(key % static_cast<uint64_t>(n));
      const std::size_t slot = mix(key) % slots_per_rank;
      record_t fetched;
      lci::status_t status;
      do {
        status = lci::post_get(owner, &fetched, sizeof(fetched), gsync,
                               rmrs[static_cast<std::size_t>(owner)],
                               slot * sizeof(record_t));
        lci::progress();
      } while (status.error.is_retry());
      if (status.error.is_posted()) lci::sync_wait(gsync, nullptr);
      if (fetched.key == key && fetched.value == key * 3)
        ++verified;
      else if (fetched.version != 0)
        ++overwritten;  // another key hashed to the same slot (expected)
    }
    std::printf("[rank %d] verified %d/%d records (%d slots overwritten by "
                "colliding keys)\n",
                rank, verified, writes, overwritten);

    lci::barrier();
    lci::deregister_rcomp(change_rcomp);
    lci::free_comp(&change_cq);
    lci::free_comp(&wsync);
    lci::free_comp(&gsync);
    lci::deregister_memory(&mr);
    lci::g_runtime_fina();
  });
  return 0;
}
