// Octo-Tiger-style mini-app example (paper Sec. 5.4): the octree ghost-
// exchange workload on the minihpx AMT runtime, selectable parcelport.
//
//   ./octotiger_mini [backend] [nranks] [nthreads] [grid] [steps] [ndevices]
//     backend: lci (default) | mpi | mpix
//
// Prints time per step and the determinism checksum (identical for every
// backend/rank/thread configuration).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "amt/octo.hpp"

int main(int argc, char** argv) {
  octo::config_t config;
  config.backend = lcw::backend_t::lci;
  if (argc > 1) {
    const std::string backend = argv[1];
    if (backend == "mpi")
      config.backend = lcw::backend_t::mpi;
    else if (backend == "mpix")
      config.backend = lcw::backend_t::mpix;
    else if (backend != "lci") {
      std::fprintf(stderr, "unknown backend %s (lci|mpi|mpix)\n",
                   backend.c_str());
      return 1;
    }
  }
  config.nranks = argc > 2 ? std::atoi(argv[2]) : 2;
  config.nthreads = argc > 3 ? std::atoi(argv[3]) : 2;
  config.grid_dim = argc > 4 ? std::atoi(argv[4]) : 4;
  config.steps = argc > 5 ? std::atoi(argv[5]) : 5;
  config.ndevices = argc > 6 ? std::atoi(argv[6])
                             : (config.backend == lcw::backend_t::mpi ? 1 : 2);

  std::printf(
      "octo mini-app: backend=%s ranks=%d threads/rank=%d devices/rank=%d "
      "%d^3 subgrids of %d^3 cells, %d steps\n",
      argv[1] != nullptr && argc > 1 ? argv[1] : "lci", config.nranks,
      config.nthreads, config.ndevices, config.grid_dim, config.subgrid_dim,
      config.steps);

  const auto result = octo::run(config);
  std::printf("time/step %.4f s  total %.3f s  remote parcels %zu\n",
              result.seconds_per_step, result.seconds, result.parcels);
  std::printf("checksum %.12g\n", result.checksum);

  const auto serial = octo::run_serial(config);
  std::printf("serial reference checksum %.12g -> %s\n", serial.checksum,
              serial.checksum == result.checksum ? "MATCH" : "MISMATCH");
  return 0;
}
