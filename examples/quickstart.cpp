// Quickstart: the smallest complete LCI program.
//
// Spawns two simulated ranks (the in-process stand-in for two processes on
// a cluster; see DESIGN.md), initializes the global default runtime, and
// exchanges messages three ways: tagged send-receive, an active message, and
// a collective broadcast.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart
#include <cstdio>
#include <cstring>

#include "core/lci.hpp"

int main() {
  lci::sim::spawn(2, [](int) {
    // Every rank allocates its global default runtime. Most LCI calls take
    // the runtime as an optional argument and default to this one.
    lci::g_runtime_init();
    const int me = lci::get_rank_me();
    const int peer = 1 - me;

    // --- 1. Tagged send-receive -----------------------------------------
    // post_* returns done (completed immediately), posted (the completion
    // object will be signaled), or retry (resources busy; resubmit).
    char inbox[64] = {};
    lci::comp_t sync = lci::alloc_sync(/*threshold=*/1);
    lci::status_t recv_status =
        lci::post_recv(peer, inbox, sizeof(inbox), /*tag=*/1, sync);

    char message[64];
    snprintf(message, sizeof(message), "hello from rank %d", me);
    lci::status_t send_status;
    do {
      send_status = lci::post_send(peer, message, sizeof(message), 1, {});
      lci::progress();  // explicit progress (Sec. 3.2.6)
    } while (send_status.error.is_retry());

    if (recv_status.error.is_posted()) lci::sync_wait(sync, &recv_status);
    std::printf("[rank %d] received: \"%s\" (tag %u)\n", me, inbox,
                recv_status.tag);

    // --- 2. Active message ----------------------------------------------
    // The target names a completion object through a remote completion
    // handle (rcomp). We enqueue arrivals into a completion queue.
    lci::comp_t rcq = lci::alloc_cq();
    lci::rcomp_t rcomp = lci::register_rcomp(rcq);
    lci::barrier();  // make sure both rcomps exist before posting

    lci::status_t am_status;
    do {
      am_status = lci::post_am_x(peer, message, sizeof(message), {}, rcomp)
                      .tag(7)();  // OFF idiom: optional args by name
      lci::progress();
    } while (am_status.error.is_retry());

    lci::status_t arrival;
    do {
      lci::progress();
      arrival = lci::cq_pop(rcq);
    } while (!arrival.error.is_done());
    std::printf("[rank %d] active message: \"%s\"\n", me,
                static_cast<char*>(arrival.buffer.base));
    std::free(arrival.buffer.base);  // AM payloads are malloc'd for us

    // --- 3. Collective --------------------------------------------------
    int answer = me == 0 ? 42 : 0;
    lci::broadcast(&answer, sizeof(answer), /*root=*/0);
    std::printf("[rank %d] broadcast value: %d\n", me, answer);

    lci::barrier();
    lci::deregister_rcomp(rcomp);
    lci::free_comp(&rcq);
    lci::free_comp(&sync);
    lci::g_runtime_fina();
  });
  return 0;
}
