// Ablation: the runtime design choices of paper Sec. 4.1, measured head to
// head (the per-experiment index in DESIGN.md calls these out):
//  * completion queue: LCRQ vs the FAA fixed-size array (Sec. 4.1.4 ships
//    both);
//  * matching engine: the paper's 64Ki-bucket table (low load factor, inline
//    fast path) vs a deliberately tiny table (high load factor, overflow
//    paths exercised);
//  * packet pool: thread-local steady state vs the stealing path (every
//    packet starts on one thread's deque, so every other thread must steal).
#include <cstdio>
#include <functional>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/comp_impl.hpp"
#include "core/matching.hpp"
#include "core/packet.hpp"

namespace {

double run_threads(int threads, long ops_per_thread,
                   const std::function<void(int)>& fn) {
  bench::thread_barrier_t barrier(threads + 1);
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      barrier.arrive_and_wait();
      fn(t);
      barrier.arrive_and_wait();
    });
  }
  barrier.arrive_and_wait();
  const double t0 = bench::now_sec();
  barrier.arrive_and_wait();
  const double t1 = bench::now_sec();
  for (auto& th : pool) th.join();
  return static_cast<double>(ops_per_thread) * threads / (t1 - t0) / 1e6;
}

}  // namespace

int main() {
  const long ops = bench::iters(100000);
  std::printf("# Ablations over individual resource designs (%ld ops/thread)\n",
              ops);

  bench::print_header("Completion queue implementation",
                      "threads  impl   Mops/s (push/pop pairs)");
  for (int threads : bench::pow2_up_to(bench::max_threads())) {
    for (const auto type : {lci::cq_type_t::lcrq, lci::cq_type_t::array}) {
      lci::detail::cq_impl_t cq(type, 65536);
      lci::status_t status;
      const double mops = run_threads(threads, ops, [&](int) {
        lci::status_t out;
        for (long i = 0; i < ops; ++i) {
          cq.signal(status);
          while (!cq.pop(&out)) {
          }
        }
      });
      std::printf("%7d  %-5s  %7.2f\n", threads,
                  type == lci::cq_type_t::lcrq ? "lcrq" : "array", mops);
    }
  }

  bench::print_header("Matching engine load factor",
                      "threads  buckets  Mops/s (insert pairs)");
  for (int threads : bench::pow2_up_to(bench::max_threads())) {
    for (const std::size_t buckets : {std::size_t{64}, std::size_t{65536}}) {
      lci::detail::matching_engine_impl_t engine(buckets);
      const double mops = run_threads(threads, ops, [&](int t) {
        using me = lci::detail::matching_engine_impl_t;
        int dummy;
        for (long i = 0; i < ops; ++i) {
          const auto key =
              me::default_make_key(t, static_cast<lci::tag_t>(i & 0x3fff),
                                   lci::matching_policy_t::rank_tag);
          engine.insert(key, &dummy, me::type_t::send);
          engine.insert(key, &dummy, me::type_t::recv);
        }
      });
      std::printf("%7d  %7zu  %7.2f\n", threads, buckets, mops);
    }
  }

  bench::print_header("Packet pool: local vs stealing",
                      "threads  pattern   Mops/s (get/put pairs)");
  for (int threads : bench::pow2_up_to(bench::max_threads())) {
    {
      // Steady state: each thread quickly accumulates a working set in its
      // own deque (one steal at warmup, local thereafter).
      lci::detail::packet_pool_impl_t pool(8192, 1024);
      const double mops = run_threads(threads, ops, [&](int) {
        for (long i = 0; i < ops; ++i) {
          if (auto* p = pool.get()) pool.put(p);
        }
      });
      std::printf("%7d  %-8s  %7.2f\n", threads, "local", mops);
    }
    {
      // Adversarial: return every packet to where it came from never happens
      // — get from the pool, hand to a global stash, force constant steals.
      lci::detail::packet_pool_impl_t pool(8192, 1024);
      lci::util::lcrq_t<lci::detail::packet_t*> stash(8192);
      const double mops = run_threads(threads, ops, [&](int) {
        for (long i = 0; i < ops; ++i) {
          lci::detail::packet_t* p = pool.get();
          if (p == nullptr) {
            // Pool ran dry locally: recycle from the stash.
            if (auto q = stash.try_pop()) pool.put(*q);
            continue;
          }
          stash.push(p);
          if (auto q = stash.try_pop()) pool.put(*q);
        }
      });
      std::printf("%7d  %-8s  %7.2f\n", threads, "stealing", mops);
    }
  }
  return 0;
}
