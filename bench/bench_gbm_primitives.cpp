// Google-benchmark microbenchmarks of the runtime's primitive operations —
// the per-op costs underneath the figure-level harnesses: posting-path
// pieces (matching-engine insert, packet get/put, completion signal/pop) and
// full single-rank post/progress round trips. Complements bench_fig5 (which
// reports the paper's thread-sweep format) with statistically managed
// per-operation timings.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/comp_impl.hpp"
#include "core/lci.hpp"
#include "core/matching.hpp"
#include "core/packet.hpp"

namespace {

void BM_MatchingInsertPair(benchmark::State& state) {
  lci::detail::matching_engine_impl_t engine(
      static_cast<std::size_t>(state.range(0)));
  using me = lci::detail::matching_engine_impl_t;
  int dummy;
  uint64_t i = 0;
  for (auto _ : state) {
    const auto key = me::default_make_key(
        static_cast<int>(i % 61), static_cast<lci::tag_t>(i & 0xffff),
        lci::matching_policy_t::rank_tag);
    benchmark::DoNotOptimize(engine.insert(key, &dummy, me::type_t::send));
    benchmark::DoNotOptimize(engine.insert(key, &dummy, me::type_t::recv));
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_MatchingInsertPair)->Arg(64)->Arg(65536);

void BM_PacketGetPut(benchmark::State& state) {
  lci::detail::packet_pool_impl_t pool(1024, 512);
  for (auto _ : state) {
    lci::detail::packet_t* packet = pool.get();
    benchmark::DoNotOptimize(packet);
    pool.put(packet);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_PacketGetPut);

void BM_CqSignalPop(benchmark::State& state) {
  lci::detail::cq_impl_t cq(
      state.range(0) == 0 ? lci::cq_type_t::lcrq : lci::cq_type_t::array,
      65536);
  lci::status_t status;
  status.rank = 1;
  lci::status_t out;
  for (auto _ : state) {
    cq.signal(status);
    benchmark::DoNotOptimize(cq.pop(&out));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_CqSignalPop)->Arg(0)->Arg(1);  // 0 = lcrq, 1 = array

void BM_SyncSignalTest(benchmark::State& state) {
  lci::detail::sync_impl_t sync(1);
  lci::status_t status, out;
  for (auto _ : state) {
    sync.signal(status);
    benchmark::DoNotOptimize(sync.test(&out));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_SyncSignalTest);

// Full LCI self-send round trip on one simulated rank: post_send +
// post_recv + progress until completion. Measures the end-to-end software
// path (posting, wire, delivery, matching, completion signaling).
void BM_SelfSendRoundTrip(benchmark::State& state) {
  lci::sim::world_t world(1);
  lci::sim::scoped_binding_t bound(world.binding(0));
  lci::runtime_attr_t attr;
  attr.matching_engine_buckets = 1024;
  lci::g_runtime_init(attr);
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  std::vector<char> out(size, 'x'), in(size);
  lci::comp_t sync = lci::alloc_sync(1);
  for (auto _ : state) {
    lci::status_t rs = lci::post_recv(0, in.data(), size, 1, sync);
    lci::status_t ss;
    do {
      ss = lci::post_send(0, out.data(), size, 1, {});
      lci::progress();
    } while (ss.error.is_retry());
    if (rs.error.is_posted()) {
      lci::status_t tmp;
      while (!lci::sync_test(sync, &tmp)) lci::progress();
    }
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(size));
  lci::free_comp(&sync);
  lci::g_runtime_fina();
}
BENCHMARK(BM_SelfSendRoundTrip)->Arg(8)->Arg(1024)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
