// Ablation: who calls progress() — the paper's central "communication
// progress" question (Sec. 3.2.6) as a measurable knob.
//
// Three modes over the same ping-pong workload (lci backend, AM traffic):
//
//   worker     every benchmark thread polls do_progress() in its loop (the
//              paper's explicit-progress regime; zero extra threads),
//   dedicated  N background engine threads own the devices; workers never
//              call do_progress() and only consume completion queues (the
//              classic MPI-style progress-thread configuration),
//   hybrid     engine threads AND worker polling (progress() stays legal
//              while auto-progress is on).
//
// Expected shape: worker-polled wins at low thread counts on spare cores
// (no handoff latency); dedicated catches up as workers get busier and wins
// when worker cycles are the scarce resource; hybrid tracks the better of
// the two at the cost of the extra threads. (The engine's idle behaviour —
// polls/advances/sleeps/wakeups — is asserted in test_progress_engine; here
// only throughput is measured.)
#include <cstdio>
#include <string>

#include "pingpong.hpp"

namespace {

struct progress_mode_t {
  const char* name;
  int nprogress_threads;
  bool workers_progress;
};

void run_case(bench::json_report_t& report, const progress_mode_t& mode, int threads,
              long iterations) {
  bench::pingpong_params_t params;
  params.backend = lcw::backend_t::lci;
  params.nranks = 2;
  params.nthreads = threads;
  params.use_am = true;
  params.msg_size = 8;
  params.iterations = iterations;
  params.nprogress_threads = mode.nprogress_threads;
  params.workers_progress = mode.workers_progress;
  const auto result = bench::run_pingpong(params);
  std::printf("%-9s  %7d  %9d  %9.4f\n", mode.name, threads,
              mode.nprogress_threads, result.mmsg_per_sec);
  report.row()
      .field("mode", std::string(mode.name))
      .field("threads", threads)
      .field("nprogress_threads", mode.nprogress_threads)
      .field("msg_size", 8)
      .field("mmsg_per_sec", result.mmsg_per_sec)
      .field("seconds", result.seconds);
}

}  // namespace

int main() {
  const long iterations = bench::iters(2000);
  const int engine_threads =
      static_cast<int>(bench::env_long("LCI_BENCH_PROGRESS_THREADS", 1));
  bench::json_report_t report("ablation_progress");
  std::printf("# Ablation: worker-polled vs dedicated vs hybrid progress\n");
  bench::print_header("Progress mode",
                      "mode       threads  engine_th  Mmsg/s");
  const progress_mode_t modes[] = {
      {"worker", 0, true},
      {"dedicated", engine_threads, false},
      {"hybrid", engine_threads, true},
  };
  for (const int threads : bench::pow2_up_to(bench::max_threads())) {
    for (const progress_mode_t& mode : modes) {
      run_case(report, mode, threads, iterations);
    }
  }
  return 0;
}
