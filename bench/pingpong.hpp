// Ping-pong driver behind the Fig. 2/3/4 microbenchmarks (paper Sec. 5.2).
//
// R simulated ranks (R even: ranks [0,R/2) are "node A", the rest "node B"),
// T threads per rank. Each thread pairs with the same-index thread of the
// rank R/2 away and exchanges `iterations` messages with it: send one, then
// send again for every arrival observed. Arrivals are counted rank-globally,
// so the pattern works both in dedicated-resource mode (device per thread)
// and shared-resource mode (one device for all threads), where completions
// land in a shared queue and are fungible across threads.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/lci.hpp"
#include "lcw/lcw.hpp"
#include "util/backoff.hpp"

namespace bench {

struct pingpong_params_t {
  lcw::backend_t backend = lcw::backend_t::lci;
  std::size_t eager_size = 0;  // align protocol crossovers across backends
  int nranks = 2;            // total ranks (even)
  int nthreads = 1;          // threads per rank
  bool dedicated = false;    // one LCW device per thread
  bool use_am = true;        // active messages vs tagged send-receive
  std::size_t msg_size = 8;
  long iterations = 1000;    // messages sent per thread
  // Progress modes (lci backend): worker-polled (0/true, the default),
  // dedicated engine threads (N/false — workers never call do_progress),
  // hybrid (N/true — engine threads plus worker polling).
  int nprogress_threads = 0;
  bool workers_progress = true;
  bool aggregation = false;  // lci backend: coalesce small eager sends/AMs
  uint64_t agg_flush_us = 0; // batch hold time; 0 flushes every progress poll
  // lci backend: shards per device (0 = runtime default). With > 1 shard
  // each worker pins itself to shard (t mod shards), giving every thread a
  // private network endpoint inside the shared device — the paper's VCI
  // recipe without allocating a device per thread.
  std::size_t device_shards = 0;
  // Send-window depth per thread (rank-wide credits = T * window). 1 is a
  // strict ping-pong (latency-bound); message-rate sweeps use a deeper
  // window so the rate decouples from the round-trip and batching/pipelining
  // in the backends can actually engage. Both sides of any comparison must
  // run the same window.
  int window = 1;
  lci::net::config_t fabric{};
};

struct pingpong_result_t {
  double seconds = 0;
  double mmsg_per_sec = 0;   // aggregate uni-directional
  double gb_per_sec = 0;     // aggregate uni-directional
  // Backend health counters summed across ranks (lcw::context_t::counters;
  // zero on backends without them). retry_lock == 0 is the lock-free
  // receive-path invariant checked by scripts/check_bench.py.
  uint64_t retry_lock = 0;
  uint64_t route_cache_hits = 0;
};

inline pingpong_result_t run_pingpong(const pingpong_params_t& params_in) {
  pingpong_params_t p = params_in;
  apply_net_env(&p.fabric);
  const int R = p.nranks;
  const int T = p.nthreads;
  const long total_msgs_per_rank = static_cast<long>(T) * p.iterations;
  const int participants = R * T;

  thread_barrier_t start_barrier(participants);
  std::vector<double> start_times(static_cast<std::size_t>(participants));
  std::vector<double> end_times(static_cast<std::size_t>(participants));
  std::atomic<uint64_t> total_retry_lock{0};
  std::atomic<uint64_t> total_route_cache_hits{0};

  lci::sim::spawn(
      R,
      [&](int rank) {
        lcw::config_t config;
        config.ndevices = p.dedicated ? T : 1;
        // AM payloads must fit the backends' eager/medium limits; tagged
        // send-receive handles any size via rendezvous, so don't inflate
        // the packet pools for it.
        config.max_am_size =
            p.use_am ? std::max<std::size_t>(p.msg_size, 64) : 4096;
        config.eager_size = p.eager_size;
        config.enable_am = p.use_am;
        config.nprogress_threads = p.nprogress_threads;
        config.enable_aggregation = p.aggregation;
        config.aggregation_flush_us = p.agg_flush_us;
        config.device_shards = p.device_shards;
        auto ctx = lcw::alloc_context(p.backend, config);
        const int peer = (rank + R / 2) % R;
        auto binding = lci::sim::current_binding();

        std::atomic<long> arrivals{0};
        std::atomic<long> recv_posts{0};
        // Rank-wide send credits (ping-pong flow control). Shared-resource
        // mode pops completions from one shared queue, so an arrival may be
        // observed by any thread — credits must be fungible across threads
        // or a thread that never pops starves and the ranks deadlock.
        std::atomic<long> credits{static_cast<long>(T) * p.window};
        // Posted sends whose completion has not been observed; like
        // arrivals, completions are fungible across threads in shared mode,
        // so the counter is rank-global.
        std::atomic<long> outstanding{0};
        // Set when any post reports `failed` (fault-injection runs kill
        // ranks mid-benchmark): the remaining traffic can never arrive, so
        // every worker on this rank stops instead of spinning.
        std::atomic<bool> peer_dead{false};
        const int recv_window = std::max(4, p.window);

        // Workers poll do_progress unless dedicated engine threads own the
        // wire; mixed (hybrid) mode keeps both legal.
        const bool workers_progress = p.workers_progress ||
                                      p.nprogress_threads == 0;

        auto worker = [&](int t) {
          lci::sim::scoped_binding_t bound(binding);
          // Affinity routing: park this worker on its own shard so its
          // traffic never shares an endpoint (or aggregation slot) with a
          // sibling. The pin is thread-local — worker 0 runs on the rank's
          // spawning thread, so it must be cleared before returning.
          if (p.device_shards > 1)
            lci::pin_thread_shard(t % static_cast<int>(p.device_shards));
          lcw::device_t* dev = ctx->device(p.dedicated ? t : 0);
          const int tag = p.dedicated ? t : 0;
          const int gid = rank * T + t;
          lci::util::backoff_t retry_backoff;

          std::vector<char> out(p.msg_size, static_cast<char>(rank + 1));
          // Receive budget: exactly as many receives as messages will
          // arrive. In dedicated mode recvs carry per-thread tags and are
          // NOT fungible across threads, so the budget must be per-thread
          // (a shared counter would let a fast thread consume re-posts a
          // slow thread's tag still needs — deadlock). Shared mode pops are
          // fungible, so one rank-global counter is exact there.
          long my_recv_budget = p.iterations;  // dedicated: per-thread
          auto take_recv_budget = [&]() {
            if (p.dedicated) return my_recv_budget-- > 0;
            return recv_posts.fetch_add(1) < total_msgs_per_rank;
          };
          // Receive buffers owned by this thread; ownership transfers with
          // the completion (the popper re-posts the buffer it popped).
          std::vector<std::unique_ptr<char[]>> bufs;
          if (!p.use_am) {
            for (int w = 0; w < recv_window; ++w) {
              bufs.push_back(std::make_unique<char[]>(p.msg_size));
              if (take_recv_budget()) {
                retry_backoff.reset();
                lcw::post_t pr;
                while ((pr = dev->post_recv(peer, bufs.back().get(),
                                            p.msg_size, tag)) ==
                       lcw::post_t::retry) {
                  if (workers_progress)
                    dev->do_progress();
                  else
                    retry_backoff.spin();  // engine threads clear the jam
                }
                if (pr == lcw::post_t::failed)
                  peer_dead.store(true, std::memory_order_relaxed);
              }
            }
          }

          start_barrier.arrive_and_wait();
          start_times[static_cast<std::size_t>(gid)] = now_sec();

          auto try_take_credit = [&]() {
            long c = credits.load(std::memory_order_relaxed);
            while (c > 0) {
              if (credits.compare_exchange_weak(c, c - 1,
                                                std::memory_order_relaxed))
                return true;
            }
            return false;
          };

          long sent = 0;
          // Exit only when every posted send completed: a rendezvous send
          // reads out[] until its completion signals.
          while (!peer_dead.load(std::memory_order_relaxed) &&
                 (sent < p.iterations ||
                  outstanding.load(std::memory_order_relaxed) > 0 ||
                  arrivals.load(std::memory_order_relaxed) <
                      total_msgs_per_rank)) {
            bool did_something = false;
            while (sent < p.iterations && try_take_credit()) {
              const auto r =
                  p.use_am ? dev->post_am(peer, out.data(), p.msg_size, tag)
                           : dev->post_send(peer, out.data(), p.msg_size, tag);
              if (r == lcw::post_t::retry) {
                credits.fetch_add(1, std::memory_order_relaxed);
                break;
              }
              if (r == lcw::post_t::failed) {
                credits.fetch_add(1, std::memory_order_relaxed);
                peer_dead.store(true, std::memory_order_relaxed);
                break;
              }
              if (r == lcw::post_t::posted)
                outstanding.fetch_add(1, std::memory_order_relaxed);
              ++sent;
              did_something = true;
            }
            if (workers_progress) did_something |= dev->do_progress();
            lcw::request_t req;
            while (dev->poll_recv(&req)) {
              did_something = true;
              if (req.failed) {
                // Fatally-completed receive (peer died): the buffer is back
                // in our hands, nothing was delivered — stop the exchange.
                peer_dead.store(true, std::memory_order_relaxed);
                continue;
              }
              arrivals.fetch_add(1, std::memory_order_relaxed);
              credits.fetch_add(1, std::memory_order_relaxed);
              if (p.use_am) {
                std::free(req.buffer);
              } else if (take_recv_budget()) {
                retry_backoff.reset();
                lcw::post_t pr;
                while ((pr = dev->post_recv(peer, req.buffer, p.msg_size,
                                            tag)) == lcw::post_t::retry) {
                  if (workers_progress)
                    dev->do_progress();
                  else
                    retry_backoff.spin();
                }
                if (pr == lcw::post_t::failed)
                  peer_dead.store(true, std::memory_order_relaxed);
              }
            }
            while (dev->poll_send(&req)) {
              did_something = true;
              outstanding.fetch_sub(1, std::memory_order_relaxed);
            }
            // Oversubscribed hosts: hand the core to the peer instead of
            // burning the rest of the scheduler quantum polling.
            if (!did_something) std::this_thread::yield();
          }
          end_times[static_cast<std::size_t>(gid)] = now_sec();
          if (p.device_shards > 1) lci::pin_thread_shard(-1);
        };

        std::vector<std::thread> threads;
        for (int t = 1; t < T; ++t) threads.emplace_back(worker, t);
        worker(0);
        for (auto& th : threads) th.join();
        // Drain stragglers (local send completions) before teardown.
        for (int i = 0; i < 100; ++i)
          for (int d = 0; d < ctx->ndevices(); ++d)
            ctx->device(d)->do_progress();
        // Snapshot backend counters before the context (and its runtime)
        // goes away; summed across ranks in the result.
        const lcw::counters_t c = ctx->counters();
        total_retry_lock.fetch_add(c.retry_lock, std::memory_order_relaxed);
        total_route_cache_hits.fetch_add(c.route_cache_hits,
                                         std::memory_order_relaxed);
      },
      p.fabric);

  double t0 = start_times[0], t1 = end_times[0];
  for (int i = 1; i < participants; ++i) {
    t0 = std::min(t0, start_times[static_cast<std::size_t>(i)]);
    t1 = std::max(t1, end_times[static_cast<std::size_t>(i)]);
  }
  pingpong_result_t result;
  result.seconds = t1 - t0;
  const double total_uni_msgs =
      static_cast<double>(total_msgs_per_rank) * (R / 2);
  result.mmsg_per_sec = total_uni_msgs / result.seconds / 1e6;
  result.gb_per_sec = total_uni_msgs * static_cast<double>(p.msg_size) /
                      result.seconds / 1e9;
  result.retry_lock = total_retry_lock.load(std::memory_order_relaxed);
  result.route_cache_hits =
      total_route_cache_hits.load(std::memory_order_relaxed);
  return result;
}

}  // namespace bench
