// Ablation: forced-retry (fault-injection) rate vs message rate.
//
// The simulated fabric's fault policy forces post_send/post_write to return
// retry_lock/retry_full at a configured rate (see docs/INTERNALS.md "Error
// handling & backpressure"). This sweep measures what the retry/backlog
// machinery costs as the fault rate grows: rate 0 is the baseline (the
// injection branch is compiled in but disabled — it must be free), and the
// higher rates show how gracefully throughput degrades when every post may
// have to be resubmitted.
//
// Expected shape: monotone decline, roughly proportional to 1/(1-rate) in
// attempted posts per delivered message, with extra loss at high rates from
// backlog churn on the rendezvous handshakes.
// Two robustness sweeps ride along (PR: peer-failure injection):
//   kill: rank 1's kill schedule fires mid-pingpong at varying depths; the
//         reported time is how long the whole benchmark takes to *terminate*
//         (every worker notices the death and winds down instead of hanging).
//   loss: a one-directional flood under silent wire loss; reports the
//         delivered fraction, the evaporated-message count, and how many
//         orphaned receives drain() had to cancel at the end.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "pingpong.hpp"

namespace {

void run_case(bench::json_report_t& report, double rate, int threads,
              long iterations) {
  bench::pingpong_params_t params;
  params.backend = lcw::backend_t::lci;
  params.nranks = 2;
  params.nthreads = threads;
  params.use_am = true;
  params.msg_size = 8;
  params.iterations = iterations;
  params.fabric.fault.retry_rate = rate;
  params.fabric.fault.seed = 0x5eed5eedull;
  const auto result = bench::run_pingpong(params);
  std::printf("%7d  %10.2f  %9.4f\n", threads, rate, result.mmsg_per_sec);
  report.row()
      .field("threads", threads)
      .field("fault_rate", rate)
      .field("mmsg_per_sec", result.mmsg_per_sec)
      .field("seconds", result.seconds);
}

// Mid-benchmark peer death: rank 1 dies after `kill_after_ops` successful
// net posts. The interesting number is the wall time to full termination —
// with the failure lifecycle in place it tracks the kill depth instead of
// hanging at the ctest timeout.
void run_kill_case(bench::json_report_t& report, long kill_after,
                   long iterations) {
  bench::pingpong_params_t params;
  params.backend = lcw::backend_t::lci;
  params.nranks = 2;
  params.nthreads = 2;
  params.use_am = false;  // tagged path: receives park and must be failed
  params.msg_size = 8;
  params.iterations = iterations;
  if (kill_after >= 0) {
    params.fabric.fault.kill_rank = 1;
    params.fabric.fault.kill_after_ops = static_cast<uint64_t>(kill_after);
  }
  params.fabric.fault.seed = 0x5eed5eedull;
  const auto result = bench::run_pingpong(params);
  std::printf("%14ld  %9.4f\n", kill_after, result.seconds);
  report.row()
      .field("mode", std::string("kill"))
      .field("kill_after_ops", kill_after)
      .field("iterations", iterations)
      .field("seconds", result.seconds);
}

// Silent wire loss: rank 0 floods rank 1 one-directionally (inject-sized, so
// every message is one wire datagram and sender completion is local). There
// is no retransmission layer, so the receiver exits on sustained idleness
// and drain() cancels the receives whose messages evaporated.
void run_loss_case(bench::json_report_t& report, double loss_rate,
                   long messages) {
  lci::net::config_t config;
  config.fault.loss_rate = loss_rate;
  config.fault.seed = 0x10551055ull;
  bench::apply_net_env(&config);

  std::atomic<bool> sender_done{false};
  std::atomic<long> delivered{0};
  std::atomic<long> drained{0};
  std::atomic<uint64_t> dropped{0};
  const double t0 = bench::now_sec();
  lci::sim::spawn(
      2,
      [&](int rank) {
        lci::g_runtime_init();
        if (rank == 0) {
          char byte = 'f';
          for (long i = 0; i < messages; ++i) {
            lci::status_t ss;
            do {
              ss = lci::post_send(1, &byte, 1, 0, {});
              lci::progress();
            } while (ss.error.is_retry());
          }
          sender_done.store(true, std::memory_order_release);
        } else {
          lci::comp_t cq = lci::alloc_cq();
          std::vector<char> bufs(static_cast<std::size_t>(messages));
          // Handles make the receives drain()-able: untracked receives are
          // only reclaimed by peer death or runtime teardown.
          std::vector<lci::op_t> ops(static_cast<std::size_t>(messages));
          for (long i = 0; i < messages; ++i)
            (void)lci::post_recv_x(0, &bufs[static_cast<std::size_t>(i)], 1,
                                   0, cq)
                .op_handle(&ops[static_cast<std::size_t>(i)])
                .allow_done(false)();
          long got = 0;
          int idle_rounds = 0;
          // Bounded idle exit: the flood has no retransmission, so once the
          // sender finished and nothing arrives for a while, the rest is
          // lost for good.
          while (idle_rounds < 2000) {
            lci::progress();
            if (!lci::cq_pop(cq).error.is_retry()) {
              ++got;
              idle_rounds = 0;
              continue;
            }
            if (sender_done.load(std::memory_order_acquire)) ++idle_rounds;
            std::this_thread::yield();
          }
          delivered.store(got, std::memory_order_relaxed);
          // Orphaned receives are force-canceled; their completions drain
          // through the same queue.
          const std::size_t killed = lci::drain(lci::device_t{}, 10000);
          drained.store(static_cast<long>(killed), std::memory_order_relaxed);
          while (!lci::cq_pop(cq).error.is_retry()) {
          }
          dropped.store(lci::get_attr(lci::device_t{}).wire_dropped,
                        std::memory_order_relaxed);
          lci::free_comp(&cq);
        }
        lci::g_runtime_fina();
      },
      config);
  const double seconds = bench::now_sec() - t0;
  const double frac =
      static_cast<double>(delivered.load()) / static_cast<double>(messages);
  std::printf("%9.3f  %9ld  %14.4f  %12lu  %9ld\n", loss_rate,
              delivered.load(), frac,
              static_cast<unsigned long>(dropped.load()), drained.load());
  report.row()
      .field("mode", std::string("loss"))
      .field("loss_rate", loss_rate)
      .field("messages", messages)
      .field("delivered", delivered.load())
      .field("delivered_frac", frac)
      .field("wire_dropped", static_cast<long>(dropped.load()))
      .field("drain_canceled", drained.load())
      .field("seconds", seconds);
}

}  // namespace

int main() {
  const long iterations = bench::iters(2000);
  bench::json_report_t report("ablation_faults");
  std::printf(
      "# Ablation: LCI message rate vs injected forced-retry rate\n");
  bench::print_header("Fault-injection rate",
                      "threads  fault_rate  Mmsg/s");
  for (const int threads : bench::pow2_up_to(bench::max_threads(), 2)) {
    for (const double rate : {0.0, 0.01, 0.05, 0.1, 0.25, 0.5}) {
      run_case(report, rate, threads, iterations);
    }
  }

  bench::print_header("Peer death mid-benchmark (kill_after_ops; -1 = none)",
                      "kill_after_ops  seconds");
  for (const long kill_after : {-1L, 100L, 1000L, 10000L}) {
    run_kill_case(report, kill_after, iterations);
  }

  bench::print_header(
      "Silent wire loss (one-directional flood)",
      "loss_rate  delivered  delivered_frac  wire_dropped  drained");
  const long flood = bench::iters(2000) * 4;
  for (const double loss : {0.0, 0.01, 0.05, 0.2}) {
    run_loss_case(report, loss, flood);
  }
  return 0;
}
