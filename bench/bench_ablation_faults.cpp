// Ablation: forced-retry (fault-injection) rate vs message rate.
//
// The simulated fabric's fault policy forces post_send/post_write to return
// retry_lock/retry_full at a configured rate (see docs/INTERNALS.md "Error
// handling & backpressure"). This sweep measures what the retry/backlog
// machinery costs as the fault rate grows: rate 0 is the baseline (the
// injection branch is compiled in but disabled — it must be free), and the
// higher rates show how gracefully throughput degrades when every post may
// have to be resubmitted.
//
// Expected shape: monotone decline, roughly proportional to 1/(1-rate) in
// attempted posts per delivered message, with extra loss at high rates from
// backlog churn on the rendezvous handshakes.
#include <cstdio>

#include "pingpong.hpp"

namespace {

void run_case(bench::json_report_t& report, double rate, int threads,
              long iterations) {
  bench::pingpong_params_t params;
  params.backend = lcw::backend_t::lci;
  params.nranks = 2;
  params.nthreads = threads;
  params.use_am = true;
  params.msg_size = 8;
  params.iterations = iterations;
  params.fabric.fault.retry_rate = rate;
  params.fabric.fault.seed = 0x5eed5eedull;
  const auto result = bench::run_pingpong(params);
  std::printf("%7d  %10.2f  %9.4f\n", threads, rate, result.mmsg_per_sec);
  report.row()
      .field("threads", threads)
      .field("fault_rate", rate)
      .field("mmsg_per_sec", result.mmsg_per_sec)
      .field("seconds", result.seconds);
}

}  // namespace

int main() {
  const long iterations = bench::iters(2000);
  bench::json_report_t report("ablation_faults");
  std::printf(
      "# Ablation: LCI message rate vs injected forced-retry rate\n");
  bench::print_header("Fault-injection rate",
                      "threads  fault_rate  Mmsg/s");
  for (const int threads : bench::pow2_up_to(bench::max_threads(), 2)) {
    for (const double rate : {0.0, 0.01, 0.05, 0.1, 0.25, 0.5}) {
      run_case(report, rate, threads, iterations);
    }
  }
  return 0;
}
