// Figure 5: maximum throughput of individual LCI resources vs thread count
// (paper Sec. 5.2.3).
//
// Paper setup: single node, all threads hammer one shared instance of a
// resource with the key methods used on the communication critical path:
//   completion queue — a push/pop pair,
//   matching engine  — inserts (a send insert matched by a recv insert),
//   packet pool      — a get/put pair.
//
// Expected shape (paper Fig. 5): packet pool scales best (thread-local
// deques, ~800 Mops at 128 threads), matching engine scales well (per-bucket
// locks, ~260 Mops), completion queue saturates early (shared fetch-and-add,
// ~18 Mops) — i.e. one pool/engine per process suffices, while throughput-
// hungry applications need multiple completion queues.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/comp_impl.hpp"
#include "core/matching.hpp"
#include "core/packet.hpp"

namespace {

using clockspec = std::chrono::steady_clock;

// Runs `fn(thread_index)` on `threads` threads; returns ops/s given
// `ops_per_thread` operations each.
double run_threads(int threads, long ops_per_thread,
                   const std::function<void(int)>& fn) {
  bench::thread_barrier_t barrier(threads + 1);
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      barrier.arrive_and_wait();
      fn(t);
      barrier.arrive_and_wait();
    });
  }
  barrier.arrive_and_wait();
  const double t0 = bench::now_sec();
  barrier.arrive_and_wait();
  const double t1 = bench::now_sec();
  for (auto& th : pool) th.join();
  return static_cast<double>(ops_per_thread) * threads / (t1 - t0);
}

}  // namespace

int main() {
  const long ops = bench::iters(100000);
  std::printf(
      "# Fig.5 reproduction: individual resource throughput, one shared\n"
      "# instance, %ld op-pairs per thread\n",
      ops);
  bench::print_header("Individual resources",
                      "threads  resource        Mops/s");

  for (int threads : bench::pow2_up_to(bench::max_threads())) {
    {
      // Completion queue: shared LCRQ, push/pop pairs.
      lci::detail::cq_impl_t cq(lci::cq_type_t::lcrq, 65536);
      lci::status_t status;
      status.rank = 1;
      const double mops =
          run_threads(threads, ops, [&](int) {
            lci::status_t out;
            for (long i = 0; i < ops; ++i) {
              cq.signal(status);
              while (!cq.pop(&out)) {
              }
            }
          }) /
          1e6;
      std::printf("%7d  %-14s  %7.2f\n", threads, "comp queue", mops);
    }
    {
      // Matching engine: a send insert immediately matched by a recv insert
      // (each thread uses its own key so the pair always matches itself).
      lci::detail::matching_engine_impl_t engine(65536);
      const double mops =
          run_threads(threads, ops, [&](int t) {
            using me = lci::detail::matching_engine_impl_t;
            int dummy;
            for (long i = 0; i < ops; ++i) {
              const auto key = me::default_make_key(
                  t, static_cast<lci::tag_t>(i & 0xffff),
                  lci::matching_policy_t::rank_tag);
              engine.insert(key, &dummy, me::type_t::send);
              engine.insert(key, &dummy, me::type_t::recv);
            }
          }) /
          1e6;
      std::printf("%7d  %-14s  %7.2f\n", threads, "matching engine", mops);
    }
    {
      // Packet pool: get/put pairs on thread-local deques.
      lci::detail::packet_pool_impl_t pool(8192, 1024);
      const double mops =
          run_threads(threads, ops, [&](int) {
            for (long i = 0; i < ops; ++i) {
              lci::detail::packet_t* packet = pool.get();
              if (packet != nullptr) pool.put(packet);
            }
          }) /
          1e6;
      std::printf("%7d  %-14s  %7.2f\n", threads, "packet pool", mops);
    }
  }
  std::printf(
      "\n# Reference point (paper): the ping-pong microbenchmark peaks well\n"
      "# below the pool/engine numbers, so one instance per process is\n"
      "# enough; the completion queue is the resource worth replicating.\n");
  return 0;
}
