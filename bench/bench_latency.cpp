// Latency microbenchmark (companion to the paper's rate/bandwidth figures:
// Sec. 5.2 argues message rate and bandwidth matter more than latency for
// asynchronous multithreaded applications, but the number is still worth
// printing). Single-threaded 8 B AM ping-pong round-trip time per backend,
// reported as median / p99 over the sample set.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/lci.hpp"
#include "lcw/lcw.hpp"

namespace {

struct latency_result_t {
  double median_us = 0;
  double p99_us = 0;
};

latency_result_t run_latency(lcw::backend_t backend, long samples,
                             const lci::net::config_t& fabric) {
  std::vector<double> rtt(static_cast<std::size_t>(samples));
  std::atomic<int> ready{0};
  lci::sim::spawn(
      2,
      [&](int rank) {
        lcw::config_t config;
        config.ndevices = 1;
        config.max_am_size = 64;
        auto ctx = lcw::alloc_context(backend, config);
        ready.fetch_add(1);
        while (ready.load() < 2) std::this_thread::yield();
        lcw::device_t* dev = ctx->device(0);
        const int peer = 1 - rank;
        uint64_t token = 0;

        auto send_one = [&] {
          while (dev->post_am(peer, &token, sizeof(token), 0) ==
                 lcw::post_t::retry) {
            if (!dev->do_progress()) std::this_thread::yield();
          }
        };
        auto recv_one = [&] {
          lcw::request_t req;
          while (!dev->poll_recv(&req)) {
            // Oversubscribed host: hand the core to the peer promptly.
            if (!dev->do_progress()) std::this_thread::yield();
          }
          std::free(req.buffer);
          lcw::request_t sreq;
          while (dev->poll_send(&sreq)) {
          }
        };

        for (long i = 0; i < samples; ++i) {
          if (rank == 0) {
            const double t0 = bench::now_sec();
            send_one();
            recv_one();
            rtt[static_cast<std::size_t>(i)] =
                (bench::now_sec() - t0) * 1e6;
          } else {
            recv_one();
            send_one();
          }
        }
        for (int i = 0; i < 500; ++i) dev->do_progress();
      },
      fabric);

  std::sort(rtt.begin(), rtt.end());
  latency_result_t result;
  result.median_us = rtt[rtt.size() / 2];
  result.p99_us = rtt[std::min(rtt.size() - 1,
                               static_cast<std::size_t>(
                                   static_cast<double>(rtt.size()) * 0.99))];
  return result;
}

}  // namespace

int main() {
  const long samples = bench::iters(2000);
  lci::net::config_t fabric;
  bench::apply_net_env(&fabric);
  std::printf(
      "# Latency companion benchmark: 8B AM ping-pong round-trip time\n"
      "# %ld samples per backend, single thread per rank\n",
      samples);
  bench::json_report_t report("latency");
  bench::print_header("Round-trip latency",
                      "backend  median(us)   p99(us)");
  for (const auto backend :
       {lcw::backend_t::lci, lcw::backend_t::mpi, lcw::backend_t::gex}) {
    const auto result = run_latency(backend, samples, fabric);
    std::printf("%7s  %10.2f  %8.2f\n", lcw::to_string(backend),
                result.median_us, result.p99_us);
    report.row()
        .field("backend", std::string(lcw::to_string(backend)))
        .field("median_us", result.median_us)
        .field("p99_us", result.p99_us);
  }
  return 0;
}
