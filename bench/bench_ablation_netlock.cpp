// Ablation: network lock granularity (paper Sec. 4.2.3/4.2.4).
//
// The same LCI thread-based message-rate benchmark under every lock layout
// the backend analysis discusses:
//   ibv/per_qp — a thread domain (own lock) per queue pair (LCI default),
//   ibv/all_qp — one thread domain for all QPs of a device,
//   ibv/none   — no thread domains: QPs share driver-owned uUAR locks,
//                serializing sends across the whole fabric,
//   ofi        — one endpoint lock for posts AND polls (cxi/verbs providers).
//
// Expected shape: per_qp >= all_qp > none for shared devices; with one
// device per thread, per_qp and all_qp converge (the paper recommends
// all_qp there); ofi trails because progress and posting collide on one
// lock.
#include <cstdio>

#include "pingpong.hpp"

namespace {

void run_case(const char* name, lci::net::lock_model_t model,
              lci::net::td_strategy_t strategy, bool dedicated,
              long iterations) {
  for (int threads : bench::pow2_up_to(bench::max_threads(), 2)) {
    bench::pingpong_params_t params;
    params.backend = lcw::backend_t::lci;
    params.nranks = 2;
    params.nthreads = threads;
    params.dedicated = dedicated;
    params.use_am = true;
    params.msg_size = 8;
    params.iterations = iterations;
    params.fabric.lock_model = model;
    params.fabric.td_strategy = strategy;
    const auto result = bench::run_pingpong(params);
    std::printf("%7d  %-12s  %9s  %9.4f\n", threads, name,
                dedicated ? "dedicated" : "shared", result.mmsg_per_sec);
  }
}

}  // namespace

int main() {
  const long iterations = bench::iters(2000);
  std::printf(
      "# Ablation: LCI message rate under the four network lock layouts\n");
  bench::print_header("Network lock granularity",
                      "threads  layout        resources  Mmsg/s");
  using lm = lci::net::lock_model_t;
  using td = lci::net::td_strategy_t;
  for (const bool dedicated : {false, true}) {
    run_case("ibv/per_qp", lm::ibv, td::per_qp, dedicated, iterations);
    run_case("ibv/all_qp", lm::ibv, td::all_qp, dedicated, iterations);
    run_case("ibv/none", lm::ibv, td::none, dedicated, iterations);
    run_case("ofi", lm::ofi, td::per_qp, dedicated, iterations);
  }
  return 0;
}
