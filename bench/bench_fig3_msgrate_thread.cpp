// Figure 3: thread-based message-rate microbenchmark.
//
// Paper setup: one process per node, one thread per core, 8 B messages;
// (a)/(c) dedicated resources — one LCI device / MPICH VCI per thread —
// LCI vs MPIX; (b)/(d) shared resources — one global resource set — LCI vs
// MPI vs GASNet-EX. Expanse = InfiniBand (our `ibv` fabric lock model),
// Delta = Slingshot-11 (our `ofi` model).
//
// Expected shape (paper Fig. 3): LCI wins by a wide margin in both modes
// (up to >10x); MPIX recovers much of the gap with dedicated VCIs but stays
// below LCI; plain MPI collapses under threads; GASNet-EX does respectably
// in shared mode but cannot run dedicated mode at all.
#include <cstdio>
#include <vector>

#include "pingpong.hpp"

namespace {

void run_mode(const char* title, bool dedicated, lci::net::lock_model_t model,
              const std::vector<lcw::backend_t>& backends, long iterations) {
  bench::print_header(title, "threads  backend  Mmsg/s  (aggregate uni-dir)");
  for (int threads : bench::pow2_up_to(bench::max_threads())) {
    for (const auto backend : backends) {
      bench::pingpong_params_t params;
      params.backend = backend;
      params.nranks = 2;
      params.nthreads = threads;
      params.dedicated = dedicated;
      params.use_am = true;
      params.msg_size = 8;
      params.iterations = iterations;
      params.fabric.lock_model = model;
      const auto result = bench::run_pingpong(params);
      std::printf("%7d  %7s  %9.4f\n", threads, lcw::to_string(backend),
                  result.mmsg_per_sec);
    }
  }
}

}  // namespace

int main() {
  const long iterations = bench::iters(2000);
  std::printf(
      "# Fig.3 reproduction: thread-based message rate (8B AMs, ping-pong)\n"
      "# one simulated process per node, T threads each; iterations/thread = "
      "%ld\n"
      "# ibv lock model ~ Expanse/InfiniBand, ofi lock model ~ "
      "Delta/Slingshot-11\n",
      iterations);

  using lm = lci::net::lock_model_t;
  run_mode("(a) Dedicated resources (ibv model)", true, lm::ibv,
           {lcw::backend_t::lci, lcw::backend_t::mpix}, iterations);
  run_mode("(b) Shared resources (ibv model)", false, lm::ibv,
           {lcw::backend_t::lci, lcw::backend_t::mpi, lcw::backend_t::gex},
           iterations);
  run_mode("(c) Dedicated resources (ofi model)", true, lm::ofi,
           {lcw::backend_t::lci, lcw::backend_t::mpix}, iterations);
  run_mode("(d) Shared resources (ofi model)", false, lm::ofi,
           {lcw::backend_t::lci, lcw::backend_t::mpi, lcw::backend_t::gex},
           iterations);
  return 0;
}
