// Figure 3: thread-based message-rate microbenchmark.
//
// Paper setup: one process per node, one thread per core, 8 B messages;
// (a)/(c) dedicated resources — one LCI device / MPICH VCI per thread —
// LCI vs MPIX; (b)/(d) shared resources — one global resource set — LCI vs
// MPI vs GASNet-EX. Expanse = InfiniBand (our `ibv` fabric lock model),
// Delta = Slingshot-11 (our `ofi` model).
//
// Expected shape (paper Fig. 3): LCI wins by a wide margin in both modes
// (up to >10x); MPIX recovers much of the gap with dedicated VCIs but stays
// below LCI; plain MPI collapses under threads; GASNet-EX does respectably
// in shared mode but cannot run dedicated mode at all.
//
// The lci backend additionally runs with eager coalescing on ("lci+agg"):
// small AMs from concurrent threads batch into one wire message per peer,
// so the per-message fabric cost (queue-pair lock, wire push, CQE) is paid
// once per batch instead of once per message. Message *rate* is measured
// with a deep send window (paper-style windowed streaming, not strict
// ping-pong) so the rate decouples from the round-trip; every backend and
// variant runs the same window, keeping the comparison honest.
#include <cstdio>
#include <vector>

#include "pingpong.hpp"

namespace {

struct variant_t {
  lcw::backend_t backend;
  bool aggregation;
  const char* label;
  std::size_t device_shards = 0;  // lci backend: VCI-style shards per device
};

void run_mode(bench::json_report_t& report, const char* title, const char* mode,
              bool dedicated, lci::net::lock_model_t model,
              const std::vector<variant_t>& variants, long iterations) {
  const char* lock_model =
      model == lci::net::lock_model_t::ibv ? "ibv" : "ofi";
  bench::print_header(title, "threads  backend  Mmsg/s  (aggregate uni-dir)");
  for (int threads : bench::pow2_up_to(bench::max_threads())) {
    for (const auto& variant : variants) {
      bench::pingpong_params_t params;
      params.backend = variant.backend;
      params.nranks = 2;
      params.nthreads = threads;
      params.dedicated = dedicated;
      params.use_am = true;
      params.msg_size = 8;
      params.iterations = iterations;
      params.aggregation = variant.aggregation;
      params.device_shards = variant.device_shards;
      // Streaming traffic: hold armed batches briefly so they fill toward
      // aggregation_max_msgs instead of flushing at whatever depth the next
      // progress poll happens to observe.
      params.agg_flush_us = 20;
      params.window = 64;
      params.fabric.lock_model = model;
      const auto result = bench::run_pingpong(params);
      std::printf("%7d  %7s  %9.4f\n", threads, variant.label,
                  result.mmsg_per_sec);
      report.row()
          .field("mode", std::string(mode))
          .field("lock_model", std::string(lock_model))
          .field("threads", threads)
          .field("backend", std::string(lcw::to_string(variant.backend)))
          .field("aggregation", variant.aggregation ? 1 : 0)
          .field("msg_size", static_cast<long>(params.msg_size))
          .field("mmsg_per_sec", result.mmsg_per_sec)
          .field("retry_lock", static_cast<long>(result.retry_lock))
          .field("route_cache_hits",
                 static_cast<long>(result.route_cache_hits));
    }
  }
}

}  // namespace

int main() {
  const long iterations = bench::iters(2000);
  std::printf(
      "# Fig.3 reproduction: thread-based message rate (8B AMs, ping-pong)\n"
      "# one simulated process per node, T threads each; iterations/thread = "
      "%ld\n"
      "# ibv lock model ~ Expanse/InfiniBand, ofi lock model ~ "
      "Delta/Slingshot-11\n",
      iterations);

  using lm = lci::net::lock_model_t;
  // The plain lci variant runs with 4 shards per device (paper Sec. 4.2
  // VCIs): each worker pins to shard (t mod 4) and gets a private endpoint
  // inside the device, which is what keeps the non-aggregated rate monotone
  // through 8 threads. The aggregation variant stays unsharded: coalescing
  // *centralizes* small sends into per-peer batches, so splitting the slots
  // across shards only dilutes them (the shard-ablation bench shows agg
  // peaking at 1-2 shards) — the two variants are the paper's two
  // contention remedies, each at its own best configuration over identical
  // traffic. device_shards=1 for the plain variant is covered by the
  // shard-ablation bench.
  const variant_t lci_plain{lcw::backend_t::lci, false, "lci", 4};
  const variant_t lci_agg{lcw::backend_t::lci, true, "lci+agg", 0};
  const variant_t mpi{lcw::backend_t::mpi, false, "mpi"};
  const variant_t mpix{lcw::backend_t::mpix, false, "mpix"};
  const variant_t gex{lcw::backend_t::gex, false, "gex"};

  bench::json_report_t report("fig3_msgrate_thread");
  run_mode(report, "(a) Dedicated resources (ibv model)", "dedicated",
           true, lm::ibv, {lci_plain, lci_agg, mpix}, iterations);
  run_mode(report, "(b) Shared resources (ibv model)", "shared",
           false, lm::ibv, {lci_plain, lci_agg, mpi, gex}, iterations);
  run_mode(report, "(c) Dedicated resources (ofi model)", "dedicated",
           true, lm::ofi, {lci_plain, lci_agg, mpix}, iterations);
  run_mode(report, "(d) Shared resources (ofi model)", "shared",
           false, lm::ofi, {lci_plain, lci_agg, mpi, gex}, iterations);
  return 0;
}
