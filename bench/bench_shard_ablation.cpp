// Shard-count ablation for the VCI-style device sharding (paper Sec. 4.2).
//
// Shared-resource message-rate runs (the fig3 harness: 8 B AMs, windowed
// streaming) with one device per rank and device_shards swept over
// {1, 2, 4, 8}. Workers pin to shard (t mod shards), so shards=1 is the
// pre-sharding single-endpoint layout and shards>=threads gives every
// thread a private endpoint inside the shared device — the ablation
// isolates how much of the dedicated-mode rate the sharding recovers
// without allocating a device per thread.
//
// Expected shape: the 8-thread rate climbs with the shard count (endpoint
// and aggregation-slot contention falls away) and saturates once
// shards >= threads; 1-thread rates stay flat (a lone thread on shard 0
// never contends, and the extra shards only cost idle CQ polls).
#include <cstdio>
#include <memory>
#include <vector>

#include "pingpong.hpp"

namespace {

// Many-to-one "incast": N-1 sender ranks stream tagged sends at one
// receiver that keeps wildcard-tag (rank_only policy) receives posted per
// sender. Wildcard keys steer to the matching engine's shared global
// segment, so this is the adversarial pattern for shard-steered matching:
// every arrival serializes on global-segment buckets while the receiver's
// sharded devices still poll their own MPSC CQs. Returns the receiver-side
// message rate in Mmsg/s.
double run_incast(int nranks, std::size_t shards, long iterations,
                  std::size_t msg_size) {
  double rate = 0.0;
  lci::sim::spawn(nranks, [&](int rank) {
    lci::runtime_attr_t attr;
    attr.device_shards = shards;
    lci::g_runtime_init(attr);
    const int receiver = 0;
    const int senders = nranks - 1;
    constexpr int window = 16;
    lci::barrier();
    if (rank == receiver) {
      lci::comp_t rcq = lci::alloc_cq();
      std::vector<long> posted(static_cast<std::size_t>(nranks), 0);
      std::vector<long> done(static_cast<std::size_t>(nranks), 0);
      std::vector<std::unique_ptr<char[]>> bufs;
      std::vector<char*> free_bufs;
      for (int i = 0; i < senders * window; ++i) {
        bufs.push_back(std::make_unique<char[]>(msg_size));
        free_bufs.push_back(bufs.back().get());
      }
      const long expected = static_cast<long>(senders) * iterations;
      long received = 0;
      const double t0 = bench::now_sec();
      while (received < expected) {
        for (int src = 1; src < nranks; ++src) {
          const auto s = static_cast<std::size_t>(src);
          while (posted[s] < iterations && posted[s] - done[s] < window &&
                 !free_bufs.empty()) {
            char* buf = free_bufs.back();
            const auto st =
                lci::post_recv_x(src, buf, msg_size, /*tag=*/0, rcq)
                    .matching_policy(lci::matching_policy_t::rank_only)
                    .allow_done(false)();
            if (st.error.is_retry()) break;
            free_bufs.pop_back();
            ++posted[s];
          }
        }
        lci::progress();
        const lci::status_t s = lci::cq_pop(rcq);
        if (s.error.is_done()) {
          ++received;
          ++done[static_cast<std::size_t>(s.rank)];
          free_bufs.push_back(static_cast<char*>(s.buffer.base));
        }
      }
      rate = static_cast<double>(expected) / (bench::now_sec() - t0) / 1e6;
      lci::barrier();
      lci::free_comp(&rcq);
    } else {
      lci::comp_t scq = lci::alloc_cq();
      std::vector<char> buf(msg_size, 'x');
      long sent = 0, completed = 0;
      while (completed < iterations) {
        if (sent < iterations && sent - completed < window) {
          // Vary the tag to prove the wildcard match: rank_only receives
          // must accept any of them.
          const auto st =
              lci::post_send_x(receiver, buf.data(), msg_size,
                               static_cast<lci::tag_t>(sent & 0xff), scq)
                  .matching_policy(lci::matching_policy_t::rank_only)();
          if (st.error.is_done()) {
            ++sent;
            ++completed;
          } else if (!st.error.is_retry()) {
            ++sent;
          }
        }
        lci::progress();
        const lci::status_t s = lci::cq_pop(scq);
        if (s.error.is_done()) ++completed;
      }
      lci::barrier();
      lci::free_comp(&scq);
    }
    lci::g_runtime_fina();
  });
  return rate;
}

}  // namespace

int main() {
  const long iterations = bench::iters(2000);
  std::printf(
      "# Shard-count ablation: shared-mode thread message rate (8B AMs)\n"
      "# one device per rank, device_shards swept; iterations/thread = %ld\n",
      iterations);

  bench::json_report_t report("shard_ablation");
  for (const bool aggregation : {false, true}) {
    bench::print_header(aggregation ? "lci+agg, shared device"
                                    : "lci, shared device",
                        "threads  shards  Mmsg/s  (aggregate uni-dir)");
    for (int threads : bench::pow2_up_to(bench::max_threads())) {
      for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
        bench::pingpong_params_t params;
        params.backend = lcw::backend_t::lci;
        params.nranks = 2;
        params.nthreads = threads;
        params.dedicated = false;
        params.use_am = true;
        params.msg_size = 8;
        params.iterations = iterations;
        params.aggregation = aggregation;
        params.agg_flush_us = 20;
        params.window = 64;
        params.device_shards = shards;
        const auto result = bench::run_pingpong(params);
        std::printf("%7d  %6zu  %9.4f\n", threads, shards,
                    result.mmsg_per_sec);
        report.row()
            .field("mode", std::string("shared"))
            .field("threads", threads)
            .field("device_shards", static_cast<long>(shards))
            .field("backend", std::string("lci"))
            .field("aggregation", aggregation ? 1 : 0)
            .field("msg_size", static_cast<long>(params.msg_size))
            .field("mmsg_per_sec", result.mmsg_per_sec);
      }
    }
  }

  // Many-to-one incast rows: wildcard-tag matching under shard steering.
  bench::print_header("incast: N-1 senders -> 1 wildcard-tag receiver",
                      "senders  shards  Mmsg/s  (receiver-side)");
  const long incast_iters = bench::iters(1000);
  for (const int nranks : {4, 8}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      const double mmsg = run_incast(nranks, shards, incast_iters, 8);
      std::printf("%7d  %6zu  %9.4f\n", nranks - 1, shards, mmsg);
      report.row()
          .field("mode", std::string("incast"))
          .field("threads", nranks - 1)
          .field("device_shards", static_cast<long>(shards))
          .field("backend", std::string("lci"))
          .field("aggregation", 0)
          .field("msg_size", 8L)
          .field("mmsg_per_sec", mmsg);
    }
  }
  return 0;
}
