// Shard-count ablation for the VCI-style device sharding (paper Sec. 4.2).
//
// Shared-resource message-rate runs (the fig3 harness: 8 B AMs, windowed
// streaming) with one device per rank and device_shards swept over
// {1, 2, 4, 8}. Workers pin to shard (t mod shards), so shards=1 is the
// pre-sharding single-endpoint layout and shards>=threads gives every
// thread a private endpoint inside the shared device — the ablation
// isolates how much of the dedicated-mode rate the sharding recovers
// without allocating a device per thread.
//
// Expected shape: the 8-thread rate climbs with the shard count (endpoint
// and aggregation-slot contention falls away) and saturates once
// shards >= threads; 1-thread rates stay flat (a lone thread on shard 0
// never contends, and the extra shards only cost idle CQ polls).
#include <cstdio>
#include <vector>

#include "pingpong.hpp"

int main() {
  const long iterations = bench::iters(2000);
  std::printf(
      "# Shard-count ablation: shared-mode thread message rate (8B AMs)\n"
      "# one device per rank, device_shards swept; iterations/thread = %ld\n",
      iterations);

  bench::json_report_t report("shard_ablation");
  for (const bool aggregation : {false, true}) {
    bench::print_header(aggregation ? "lci+agg, shared device"
                                    : "lci, shared device",
                        "threads  shards  Mmsg/s  (aggregate uni-dir)");
    for (int threads : bench::pow2_up_to(bench::max_threads())) {
      for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
        bench::pingpong_params_t params;
        params.backend = lcw::backend_t::lci;
        params.nranks = 2;
        params.nthreads = threads;
        params.dedicated = false;
        params.use_am = true;
        params.msg_size = 8;
        params.iterations = iterations;
        params.aggregation = aggregation;
        params.agg_flush_us = 20;
        params.window = 64;
        params.device_shards = shards;
        const auto result = bench::run_pingpong(params);
        std::printf("%7d  %6zu  %9.4f\n", threads, shards,
                    result.mmsg_per_sec);
        report.row()
            .field("mode", std::string("shared"))
            .field("threads", threads)
            .field("device_shards", static_cast<long>(shards))
            .field("backend", std::string("lci"))
            .field("aggregation", aggregation ? 1 : 0)
            .field("msg_size", static_cast<long>(params.msg_size))
            .field("mmsg_per_sec", result.mmsg_per_sec);
      }
    }
  }
  return 0;
}
