// Figure 6: k-mer counting strong scaling (paper Sec. 5.3).
//
// Paper setup: human chr14 (7.75 GB, 37M reads, k=51), 2 processes per node
// to avoid inter-socket overheads, 8 KB aggregation buffers, strong scaling
// from 1 node (128 cores) to 32 nodes; multithreaded implementation with
// LCI vs GASNet-EX backends vs the single-threaded UPC++-style reference
// (HipMer layout: one process per core).
//
// Reproduction: synthetic reads (deterministic by seed; see DESIGN.md),
// k=21, "nodes" scaled down to what the host can run. Expected shape
// (paper Fig. 6): the multithreaded implementation beats the one-process-
// per-core reference as scale grows (better load balance, fewer aggregation
// targets), and the LCI backend beats the GASNet-EX backend.
#include <cstdio>

#include "bench_common.hpp"
#include "kmer/pipeline.hpp"

int main() {
  const int threads_per_rank = std::max(2, bench::max_threads() / 2);
  const long genome = bench::iters(200000);  // reference genome length

  kmer::pipeline_config_t base;
  base.genome.genome_length = static_cast<std::size_t>(genome);
  base.genome.read_length = 100;
  base.genome.coverage = 8;
  base.genome.error_rate = 0.01;
  base.k = 21;
  base.nthreads = threads_per_rank;
  base.agg_buffer_bytes = 8192;
  bench::apply_net_env(&base.fabric);

  std::printf(
      "# Fig.6 reproduction: k-mer counting strong scaling\n"
      "# synthetic genome %ldbp, cov %.0fx, err %.2f, k=%d; 2 ranks/node, "
      "%d threads/rank\n"
      "# ref_st = single-threaded reference layout (1 rank per 'core')\n",
      genome, base.genome.coverage, base.genome.error_rate, base.k,
      threads_per_rank);
  bench::print_header("K-mer counting", "nodes  mode    seconds  Mkmers/s");

  const int max_nodes = std::max(1, bench::max_threads() / 4);
  for (int nodes = 1; nodes <= max_nodes; nodes *= 2) {
    for (const auto mode :
         {kmer::pipeline_mode_t::lci_mt, kmer::pipeline_mode_t::gex_mt,
          kmer::pipeline_mode_t::ref_st}) {
      kmer::pipeline_config_t config = base;
      config.mode = mode;
      config.nranks = 2 * nodes;  // 2 processes per node (paper setup)
      const auto result = kmer::run_pipeline(config);
      std::printf("%5d  %6s  %7.3f  %8.3f\n", nodes,
                  kmer::to_string(mode), result.seconds,
                  static_cast<double>(result.total_kmers) / result.seconds /
                      1e6);
    }
  }
  return 0;
}
