// Shared helpers for the benchmark harnesses that regenerate the paper's
// tables and figures. Each binary prints the same rows/series the paper
// reports; absolute numbers are not comparable to the paper's clusters (the
// substrate is a simulated fabric on whatever host runs this), but the shape
// — who wins, by roughly what factor, where crossovers fall — is the
// reproduction target (see EXPERIMENTS.md).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "net/net.hpp"

namespace bench {

inline long env_long(const char* name, long fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atol(value) : fallback;
}

inline double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

// Global scale knobs: LCI_BENCH_MAX_THREADS caps thread sweeps (the paper
// sweeps to 128 threads on 128-core nodes; pick what your host can bear),
// LCI_BENCH_ITERS scales per-thread iteration counts.
inline int max_threads() {
  return static_cast<int>(env_long("LCI_BENCH_MAX_THREADS", 8));
}
inline long iters(long dflt) {
  const long scale = env_long("LCI_BENCH_ITERS", 0);
  return scale > 0 ? scale : dflt;
}

// Optional wire timing model for every bench: LCI_BENCH_LATENCY_US and
// LCI_BENCH_BW_GBPS (0 = structural model only).
inline void apply_net_env(lci::net::config_t* config) {
  config->latency_us = env_double("LCI_BENCH_LATENCY_US", config->latency_us);
  config->bandwidth_gbps =
      env_double("LCI_BENCH_BW_GBPS", config->bandwidth_gbps);
}

inline double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Barrier for in-process benchmark threads (not the LCI barrier: benchmark
// harness threads synchronize out of band, like the paper's LCW harness).
class thread_barrier_t {
 public:
  explicit thread_barrier_t(int count) : count_(count) {}
  void arrive_and_wait() {
    const int generation = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == count_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_release);
    } else {
      while (generation_.load(std::memory_order_acquire) == generation)
        std::this_thread::yield();
    }
  }

 private:
  const int count_;
  std::atomic<int> arrived_{0};
  std::atomic<int> generation_{0};
};

inline std::vector<int> pow2_up_to(int max, int from = 1) {
  std::vector<int> values;
  for (int v = from; v <= max; v *= 2) values.push_back(v);
  return values;
}

inline void print_header(const char* title, const char* columns) {
  std::printf("\n## %s\n%s\n", title, columns);
}

}  // namespace bench
