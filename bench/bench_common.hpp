// Shared helpers for the benchmark harnesses that regenerate the paper's
// tables and figures. Each binary prints the same rows/series the paper
// reports; absolute numbers are not comparable to the paper's clusters (the
// substrate is a simulated fabric on whatever host runs this), but the shape
// — who wins, by roughly what factor, where crossovers fall — is the
// reproduction target (see EXPERIMENTS.md).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/net.hpp"

namespace bench {

inline long env_long(const char* name, long fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atol(value) : fallback;
}

inline double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

// Global scale knobs: LCI_BENCH_MAX_THREADS caps thread sweeps (the paper
// sweeps to 128 threads on 128-core nodes; pick what your host can bear),
// LCI_BENCH_ITERS scales per-thread iteration counts.
inline int max_threads() {
  return static_cast<int>(env_long("LCI_BENCH_MAX_THREADS", 8));
}
inline long iters(long dflt) {
  const long scale = env_long("LCI_BENCH_ITERS", 0);
  return scale > 0 ? scale : dflt;
}

// Optional wire timing model for every bench: LCI_BENCH_LATENCY_US and
// LCI_BENCH_BW_GBPS (0 = structural model only). Failure knobs for the
// robustness sweeps: LCI_BENCH_KILL_RANK/LCI_BENCH_KILL_AFTER schedule a
// peer death, LCI_BENCH_LOSS_RATE drops wire messages silently.
inline void apply_net_env(lci::net::config_t* config) {
  config->latency_us = env_double("LCI_BENCH_LATENCY_US", config->latency_us);
  config->bandwidth_gbps =
      env_double("LCI_BENCH_BW_GBPS", config->bandwidth_gbps);
  config->fault.kill_rank = static_cast<int>(
      env_long("LCI_BENCH_KILL_RANK", config->fault.kill_rank));
  config->fault.kill_after_ops = static_cast<uint64_t>(env_long(
      "LCI_BENCH_KILL_AFTER", static_cast<long>(config->fault.kill_after_ops)));
  config->fault.loss_rate =
      env_double("LCI_BENCH_LOSS_RATE", config->fault.loss_rate);
}

inline double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Barrier for in-process benchmark threads (not the LCI barrier: benchmark
// harness threads synchronize out of band, like the paper's LCW harness).
class thread_barrier_t {
 public:
  explicit thread_barrier_t(int count) : count_(count) {}
  void arrive_and_wait() {
    const int generation = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == count_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_release);
    } else {
      while (generation_.load(std::memory_order_acquire) == generation)
        std::this_thread::yield();
    }
  }

 private:
  const int count_;
  std::atomic<int> arrived_{0};
  std::atomic<int> generation_{0};
};

inline std::vector<int> pow2_up_to(int max, int from = 1) {
  std::vector<int> values;
  for (int v = from; v <= max; v *= 2) values.push_back(v);
  return values;
}

inline void print_header(const char* title, const char* columns) {
  std::printf("\n## %s\n%s\n", title, columns);
}

// Machine-readable results next to the human-readable tables: every bench
// writes BENCH_<name>.json ({"bench": ..., "rows": [{...}, ...]}) so sweeps
// can be scripted/plotted without scraping stdout. LCI_BENCH_JSON=0 disables;
// LCI_BENCH_JSON_DIR overrides the output directory (default: cwd).
class json_report_t {
 public:
  explicit json_report_t(std::string name) : name_(std::move(name)) {}
  ~json_report_t() { write(); }
  json_report_t(const json_report_t&) = delete;
  json_report_t& operator=(const json_report_t&) = delete;

  // Starts a new result row; field() calls populate the current row.
  json_report_t& row() {
    rows_.emplace_back();
    return *this;
  }
  json_report_t& field(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return raw_field(key, buf);
  }
  json_report_t& field(const std::string& key, long value) {
    return raw_field(key, std::to_string(value));
  }
  json_report_t& field(const std::string& key, int value) {
    return raw_field(key, std::to_string(value));
  }
  json_report_t& field(const std::string& key, const std::string& value) {
    return raw_field(key, "\"" + value + "\"");
  }

  void write() {
    if (written_ || env_long("LCI_BENCH_JSON", 1) == 0) return;
    written_ = true;
    const char* dir = std::getenv("LCI_BENCH_JSON_DIR");
    const std::string path =
        (dir != nullptr ? std::string(dir) + "/" : std::string()) + "BENCH_" +
        name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "json_report: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [", name_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s\n    {", i == 0 ? "" : ",");
      const auto& row = rows_[i];
      for (std::size_t j = 0; j < row.size(); ++j) {
        std::fprintf(f, "%s\"%s\": %s", j == 0 ? "" : ", ",
                     row[j].first.c_str(), row[j].second.c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("json: %s (%zu rows)\n", path.c_str(), rows_.size());
  }

 private:
  json_report_t& raw_field(const std::string& key, std::string rendered) {
    if (rows_.empty()) rows_.emplace_back();
    rows_.back().emplace_back(key, std::move(rendered));
    return *this;
  }

  std::string name_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
  bool written_ = false;
};

}  // namespace bench
