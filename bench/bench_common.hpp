// Shared helpers for the benchmark harnesses that regenerate the paper's
// tables and figures. Each binary prints the same rows/series the paper
// reports; absolute numbers are not comparable to the paper's clusters (the
// substrate is a simulated fabric on whatever host runs this), but the shape
// — who wins, by roughly what factor, where crossovers fall — is the
// reproduction target (see EXPERIMENTS.md).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/lci.hpp"
#include "net/net.hpp"

namespace bench {

inline long env_long(const char* name, long fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atol(value) : fallback;
}

inline double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : fallback;
}

// CI smoke mode: LCI_BENCH_SMOKE=1 shrinks iteration counts and thread
// sweeps so the full bench suite finishes in CI minutes, while keeping the
// row schema identical to a full run (the regression checker joins rows on
// their config fields, so a smoke run compares against a smoke baseline).
inline bool smoke() { return env_long("LCI_BENCH_SMOKE", 0) != 0; }

// Global scale knobs: LCI_BENCH_MAX_THREADS caps thread sweeps (the paper
// sweeps to 128 threads on 128-core nodes; pick what your host can bear),
// LCI_BENCH_ITERS scales per-thread iteration counts.
inline int max_threads() {
  const int cap = static_cast<int>(env_long("LCI_BENCH_MAX_THREADS", 8));
  return smoke() ? std::min(cap, 8) : cap;
}
inline long iters(long dflt) {
  const long scale = env_long("LCI_BENCH_ITERS", 0);
  if (scale > 0) return scale;
  // Smoke caps rather than divides: the microbenchmarks already default to
  // ~2000 iterations (seconds of wall clock) and dividing further makes the
  // rates too noisy to gate on; the cap only bites the long mini-app runs.
  return smoke() ? std::min(dflt, 2000L) : dflt;
}

// Optional wire timing model for every bench: LCI_BENCH_LATENCY_US and
// LCI_BENCH_BW_GBPS (0 = structural model only). Failure knobs for the
// robustness sweeps: LCI_BENCH_KILL_RANK/LCI_BENCH_KILL_AFTER schedule a
// peer death, LCI_BENCH_LOSS_RATE drops wire messages silently.
inline void apply_net_env(lci::net::config_t* config) {
  config->latency_us = env_double("LCI_BENCH_LATENCY_US", config->latency_us);
  config->bandwidth_gbps =
      env_double("LCI_BENCH_BW_GBPS", config->bandwidth_gbps);
  config->fault.kill_rank = static_cast<int>(
      env_long("LCI_BENCH_KILL_RANK", config->fault.kill_rank));
  config->fault.kill_after_ops = static_cast<uint64_t>(env_long(
      "LCI_BENCH_KILL_AFTER", static_cast<long>(config->fault.kill_after_ops)));
  config->fault.loss_rate =
      env_double("LCI_BENCH_LOSS_RATE", config->fault.loss_rate);
}

inline double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Barrier for in-process benchmark threads (not the LCI barrier: benchmark
// harness threads synchronize out of band, like the paper's LCW harness).
class thread_barrier_t {
 public:
  explicit thread_barrier_t(int count) : count_(count) {}
  void arrive_and_wait() {
    const int generation = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == count_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_release);
    } else {
      while (generation_.load(std::memory_order_acquire) == generation)
        std::this_thread::yield();
    }
  }

 private:
  const int count_;
  std::atomic<int> arrived_{0};
  std::atomic<int> generation_{0};
};

inline std::vector<int> pow2_up_to(int max, int from = 1) {
  std::vector<int> values;
  for (int v = from; v <= max; v *= 2) values.push_back(v);
  return values;
}

inline void print_header(const char* title, const char* columns) {
  std::printf("\n## %s\n%s\n", title, columns);
}

// Machine-readable results next to the human-readable tables: every bench
// writes BENCH_<name>.json ({"bench": ..., "meta": {...}, "rows": [...]})
// so sweeps can be scripted/plotted without scraping stdout.
// LCI_BENCH_JSON=0 disables; LCI_BENCH_JSON_DIR overrides the output
// directory (default: build/bench_reports/ under the current directory,
// created on demand — reports used to land in whatever directory the binary
// ran from, silently overwriting the checked-in baselines on an in-tree
// run). The "meta" object records the machine/config context a number is
// meaningless without; when tracing is enabled (LCI_TRACE=1) a "perf"
// object adds the merged post-to-completion / progress-poll latency
// histograms (count, p50/p99/max ns).
class json_report_t {
 public:
  explicit json_report_t(std::string name) : name_(std::move(name)) {}
  ~json_report_t() { write(); }
  json_report_t(const json_report_t&) = delete;
  json_report_t& operator=(const json_report_t&) = delete;

  // Starts a new result row; field() calls populate the current row.
  json_report_t& row() {
    rows_.emplace_back();
    return *this;
  }
  json_report_t& field(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return raw_field(key, buf);
  }
  json_report_t& field(const std::string& key, long value) {
    return raw_field(key, std::to_string(value));
  }
  json_report_t& field(const std::string& key, int value) {
    return raw_field(key, std::to_string(value));
  }
  json_report_t& field(const std::string& key, const std::string& value) {
    return raw_field(key, "\"" + value + "\"");
  }

  void write() {
    if (written_ || env_long("LCI_BENCH_JSON", 1) == 0) return;
    written_ = true;
    const std::string path = output_path();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "json_report: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", name_.c_str());
    write_meta(f);
    write_perf(f);
    std::fprintf(f, "  \"rows\": [");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s\n    {", i == 0 ? "" : ",");
      const auto& row = rows_[i];
      for (std::size_t j = 0; j < row.size(); ++j) {
        std::fprintf(f, "%s\"%s\": %s", j == 0 ? "" : ", ",
                     row[j].first.c_str(), row[j].second.c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("json: %s (%zu rows)\n", path.c_str(), rows_.size());
    // LCI_TRACE_DUMP=<path>: export the Chrome trace alongside the report
    // (only meaningful when the run was traced; see scripts/trace_summary.py).
    if (const char* trace_path = std::getenv("LCI_TRACE_DUMP")) {
      if (lci::trace_dump_json(trace_path))
        std::printf("trace: %s\n", trace_path);
      else
        std::fprintf(stderr, "json_report: cannot write trace %s\n",
                     trace_path);
    }
  }

 private:
  json_report_t& raw_field(const std::string& key, std::string rendered) {
    if (rows_.empty()) rows_.emplace_back();
    rows_.back().emplace_back(key, std::move(rendered));
    return *this;
  }

  std::string output_path() const {
    const char* env_dir = std::getenv("LCI_BENCH_JSON_DIR");
    std::string dir = env_dir != nullptr ? std::string(env_dir)
                                         : std::string("build/bench_reports");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec && !std::filesystem::is_directory(dir)) {
      std::fprintf(stderr, "json_report: cannot create %s (%s), using cwd\n",
                   dir.c_str(), ec.message().c_str());
      dir = ".";
    }
    return dir + "/BENCH_" + name_ + ".json";
  }

  void write_meta(std::FILE* f) const {
    char timestamp[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    if (gmtime_r(&now, &tm_utc) != nullptr)
      std::strftime(timestamp, sizeof(timestamp), "%Y-%m-%dT%H:%M:%SZ",
                    &tm_utc);
    std::fprintf(f,
                 "  \"meta\": {\"hardware_threads\": %u, "
                 "\"compiler\": \"%s\", \"build\": \"%s\", "
                 "\"smoke\": %d, \"max_threads\": %d, \"timestamp\": "
                 "\"%s\"},\n",
                 std::thread::hardware_concurrency(), compiler_id(),
#ifdef NDEBUG
                 "optimized",
#else
                 "debug",
#endif
                 smoke() ? 1 : 0, max_threads(), timestamp);
  }

  static const char* compiler_id() {
#if defined(__clang__)
    return "clang " __clang_version__;
#elif defined(__GNUC__)
    return "gcc " __VERSION__;
#else
    return "unknown";
#endif
  }

  // When the run was traced (LCI_TRACE=1 or .trace(true)), fold the merged
  // latency histograms into the report so every BENCH_*.json carries
  // percentiles next to its throughput rows. Counts are zero when tracing
  // was off — then the section is omitted entirely.
  void write_perf(std::FILE* f) const {
    const lci::histograms_t h = lci::get_histograms();
    const std::pair<const char*, const lci::latency_histogram_t*> entries[] = {
        {"post_eager", &h.post_eager},   {"post_batch", &h.post_batch},
        {"post_rdv", &h.post_rdv},       {"post_recv", &h.post_recv},
        {"progress_poll", &h.progress_poll}};
    bool any = false;
    for (const auto& entry : entries) any |= entry.second->count > 0;
    if (!any) return;
    std::fprintf(f, "  \"perf\": {");
    bool first = true;
    for (const auto& entry : entries) {
      if (entry.second->count == 0) continue;
      std::fprintf(f,
                   "%s\n    \"%s\": {\"count\": %llu, \"p50_ns\": %llu, "
                   "\"p99_ns\": %llu, \"max_ns\": %llu}",
                   first ? "" : ",", entry.first,
                   static_cast<unsigned long long>(entry.second->count),
                   static_cast<unsigned long long>(entry.second->p50_ns),
                   static_cast<unsigned long long>(entry.second->p99_ns),
                   static_cast<unsigned long long>(entry.second->max_ns));
      first = false;
    }
    std::fprintf(f, "\n  },\n");
  }

  std::string name_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
  bool written_ = false;
};

}  // namespace bench
