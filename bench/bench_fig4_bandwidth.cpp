// Figure 4: thread-based bandwidth microbenchmark.
//
// Paper setup: one process per node, 64 threads (pinned to one socket),
// tagged send-receive ping-pong, message size swept 16 B .. 1 MiB, 1k
// iterations; dedicated vs shared resources; LCI vs MPI vs MPIX (GASNet-EX
// absent — its LCW backend has no send-receive).
//
// Expected shape (paper Fig. 4): LCI leads at small/medium sizes (the
// threading-efficiency regime); all libraries converge at large sizes where
// the wire (here: memcpy) dominates.
#include <cstdio>
#include <vector>

#include "pingpong.hpp"

namespace {

void run_mode(const char* title, bool dedicated,
              const std::vector<lcw::backend_t>& backends, int threads,
              long iterations) {
  bench::print_header(title, "size(B)  backend  GB/s  (aggregate uni-dir)");
  // Paper sweeps 16B..1MiB; sample one point per 8x octave and shrink the
  // iteration count with size so the wall time per configuration stays
  // bounded on oversubscribed hosts.
  for (std::size_t size = 16; size <= (1u << 20); size *= 8) {
    for (const auto backend : backends) {
      bench::pingpong_params_t params;
      params.backend = backend;
      params.nranks = 2;
      params.nthreads = threads;
      params.dedicated = dedicated;
      params.use_am = false;  // send-receive
      params.eager_size = 16384;  // same eager/rendezvous crossover for all
      params.msg_size = size;
      params.iterations =
          std::max<long>(iterations / static_cast<long>(1 + size / 2048), 16);
      const auto result = bench::run_pingpong(params);
      std::printf("%7zu  %7s  %7.3f\n", size, lcw::to_string(backend),
                  result.gb_per_sec);
    }
  }
}

}  // namespace

int main() {
  const int threads = std::max(2, bench::max_threads() / 2);
  const long iterations = bench::iters(400);
  std::printf(
      "# Fig.4 reproduction: thread-based bandwidth (send-receive ping-pong)\n"
      "# one simulated process per node, %d threads each; GASNet-EX absent "
      "(no send-receive, as in the paper)\n",
      threads);
  run_mode("(a) Dedicated resources", true,
           {lcw::backend_t::lci, lcw::backend_t::mpix}, threads, iterations);
  run_mode("(b) Shared resources", false,
           {lcw::backend_t::lci, lcw::backend_t::mpi}, threads, iterations);
  return 0;
}
