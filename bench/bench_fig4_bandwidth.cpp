// Figure 4: thread-based bandwidth microbenchmark.
//
// Paper setup: one process per node, 64 threads (pinned to one socket),
// tagged send-receive ping-pong, message size swept 16 B .. 1 MiB, 1k
// iterations; dedicated vs shared resources; LCI vs MPI vs MPIX (GASNet-EX
// absent — its LCW backend has no send-receive).
//
// Expected shape (paper Fig. 4): LCI leads at small/medium sizes (the
// threading-efficiency regime); all libraries converge at large sizes where
// the wire (here: memcpy) dominates.
//
// Backend axis: by default the sweep runs on the simulated fabric (rows
// tagged net=sim). Launched under scripts/launch_local.sh with LCI_NRANKS>1
// the binary instead runs a real-transport bandwidth sweep between ranks 0
// and 1 over the ambient backend (net=shm or net=tcp), and each row carries
// the registration-cache hit/miss deltas so scripts/check_bench.py can gate
// the steady-state hit rate on rendezvous traffic.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "pingpong.hpp"

namespace {

void run_mode(bench::json_report_t& report, const char* title, const char* mode,
              bool dedicated, const std::vector<lcw::backend_t>& backends,
              int threads, long iterations) {
  bench::print_header(title, "size(B)  backend  GB/s  (aggregate uni-dir)");
  // Paper sweeps 16B..1MiB; sample one point per 8x octave and shrink the
  // iteration count with size so the wall time per configuration stays
  // bounded on oversubscribed hosts.
  for (std::size_t size = 16; size <= (1u << 20); size *= 8) {
    for (const auto backend : backends) {
      bench::pingpong_params_t params;
      params.backend = backend;
      params.nranks = 2;
      params.nthreads = threads;
      params.dedicated = dedicated;
      params.use_am = false;  // send-receive
      params.eager_size = 16384;  // same eager/rendezvous crossover for all
      params.msg_size = size;
      params.iterations =
          std::max<long>(iterations / static_cast<long>(1 + size / 2048), 16);
      const auto result = bench::run_pingpong(params);
      std::printf("%7zu  %7s  %7.3f\n", size, lcw::to_string(backend),
                  result.gb_per_sec);
      report.row()
          .field("net", std::string("sim"))
          .field("mode", std::string(mode))
          .field("backend", std::string(lcw::to_string(backend)))
          .field("threads", threads)
          .field("msg_size", static_cast<long>(size))
          .field("gb_per_sec", result.gb_per_sec);
    }
  }
}

void run_sim() {
  bench::json_report_t report("fig4_bandwidth");
  const int threads = std::max(2, bench::max_threads() / 2);
  const long iterations = bench::iters(400);
  std::printf(
      "# Fig.4 reproduction: thread-based bandwidth (send-receive ping-pong)\n"
      "# one simulated process per node, %d threads each; GASNet-EX absent "
      "(no send-receive, as in the paper)\n",
      threads);
  run_mode(report, "(a) Dedicated resources", "dedicated", true,
           {lcw::backend_t::lci, lcw::backend_t::mpix}, threads, iterations);
  run_mode(report, "(b) Shared resources", "shared", false,
           {lcw::backend_t::lci, lcw::backend_t::mpi}, threads, iterations);
}

// Real-transport sweep: one rank of a launch_local.sh job. Rank 1 streams a
// window of sends at rank 0; rank 0 receives into one reused buffer, times
// the stream, and snapshots the registration-cache counters. Rendezvous
// registration happens on the *receiver* (the RTR carries the target MR), so
// the reused recv buffer is what hammers the cache: steady state is one miss
// for the buffer, then all hits.
void run_real() {
  lci::runtime_attr_t attr;
  // Small-ring soaks shrink LCI_SHM_RING_KB below the default 4 KiB packet;
  // LCI_BENCH_PACKET_SIZE lets the run shrink the packets to match instead
  // of failing the packet-vs-frame capacity check at init.
  if (const char* env = std::getenv("LCI_BENCH_PACKET_SIZE"))
    if (env[0] != '\0' && std::atol(env) > 0)
      attr.packet_size = static_cast<std::size_t>(std::atol(env));
  lci::g_runtime_init(attr);
  const int me = lci::get_rank_me();
  const char* net =
      lci::net::to_string(lci::get_attr(lci::runtime_t{}).backend);
  const char* ring_env = std::getenv("LCI_SHM_RING_KB");
  const long ring_kb =
      ring_env != nullptr && ring_env[0] != '\0' ? std::atol(ring_env) : 1024;
  const long base_iters = bench::iters(400);
  constexpr int kWindow = 16;
  constexpr int kTag = 4;

  bench::json_report_t report(std::string("fig4_bandwidth_") + net);
  if (me == 0)
    bench::print_header((std::string("Real transport (net=") + net + ")")
                            .c_str(),
                        "size(B)  GB/s  reg_hits  reg_misses");

  for (std::size_t size = 16; size <= (1u << 20); size *= 8) {
    const long iters = std::max<long>(
        base_iters / static_cast<long>(1 + size / 2048), 16);
    lci::barrier();
    if (me == 0) {
      std::vector<char> in(size, 0);
      lci::comp_t recv_sync = lci::alloc_sync(1);
      const lci::counters_t before = lci::get_counters();
      const double t0 = bench::now_sec();
      // One outstanding recv at a time: the sender's window rides the
      // transport's buffering, and serialized recvs keep matching trivial.
      for (long i = 0; i < iters; ++i) {
        lci::status_t r =
            lci::post_recv(1, in.data(), size, kTag, recv_sync);
        if (r.error.is_posted()) lci::sync_wait(recv_sync, &r);
      }
      const double elapsed = bench::now_sec() - t0;
      const lci::counters_t after = lci::get_counters();
      char ack = 1;
      lci::status_t s;
      do {
        s = lci::post_send(1, &ack, 1, kTag + 1, {});
        lci::progress();
      } while (s.error.is_retry());
      // Backpressure happens on the *producer* (rank 1 parks on the ring
      // futex); pull its delta over so the report row carries it.
      uint64_t peer_bp = 0;
      lci::status_t bp_status =
          lci::post_recv(1, &peer_bp, sizeof(peer_bp), kTag + 2, recv_sync);
      if (bp_status.error.is_posted()) lci::sync_wait(recv_sync, &bp_status);
      const double gbps = static_cast<double>(iters) *
                          static_cast<double>(size) / elapsed / 1e9;
      const long hits =
          static_cast<long>(after.reg_cache_hits - before.reg_cache_hits);
      const long misses =
          static_cast<long>(after.reg_cache_misses - before.reg_cache_misses);
      const long bp_waits =
          static_cast<long>(after.backpressure_waits -
                            before.backpressure_waits + peer_bp);
      std::printf("%7zu  %7.3f  %8ld  %10ld\n", size, gbps, hits, misses);
      report.row()
          .field("net", std::string(net))
          .field("mode", std::string("real"))
          .field("backend", std::string("lci"))
          .field("threads", 1)
          .field("msg_size", static_cast<long>(size))
          .field("ring_kb", ring_kb)
          .field("reg_hits", hits)
          .field("reg_misses", misses)
          .field("bp_waits", bp_waits)
          .field("gb_per_sec", gbps);
      lci::free_comp(&recv_sync);
    } else if (me == 1) {
      std::vector<char> out(size, 'x');
      char ack = 0;
      const lci::counters_t before = lci::get_counters();
      lci::comp_t ack_sync = lci::alloc_sync(1);
      lci::status_t ack_status =
          lci::post_recv(0, &ack, 1, kTag + 1, ack_sync);
      std::vector<lci::comp_t> send_sync(kWindow);
      std::vector<bool> in_flight(kWindow, false);
      for (auto& sy : send_sync) sy = lci::alloc_sync(1);
      for (long i = 0; i < iters; ++i) {
        const int slot = static_cast<int>(i % kWindow);
        if (in_flight[slot]) {
          lci::status_t done;
          lci::sync_wait(send_sync[slot], &done);
          in_flight[slot] = false;
        }
        lci::status_t s;
        do {
          s = lci::post_send(0, out.data(), size, kTag, send_sync[slot]);
          lci::progress();
        } while (s.error.is_retry());
        in_flight[slot] = s.error.is_posted();
      }
      for (int slot = 0; slot < kWindow; ++slot) {
        if (!in_flight[slot]) continue;
        lci::status_t done;
        lci::sync_wait(send_sync[slot], &done);
      }
      if (ack_status.error.is_posted()) lci::sync_wait(ack_sync, &ack_status);
      uint64_t bp = lci::get_counters().backpressure_waits -
                    before.backpressure_waits;
      lci::status_t bs;
      do {
        bs = lci::post_send(0, &bp, sizeof(bp), kTag + 2, {});
        lci::progress();
      } while (bs.error.is_retry());
      for (auto& sy : send_sync) lci::free_comp(&sy);
      lci::free_comp(&ack_sync);
    }
  }
  lci::barrier();
  if (me != 0) {
    // Only rank 0 holds measurements; suppress the empty sibling report.
    setenv("LCI_BENCH_JSON", "0", 1);
  }
  lci::g_runtime_fina();
}

}  // namespace

int main() {
  const char* nranks_env = std::getenv("LCI_NRANKS");
  if (nranks_env != nullptr && std::atoi(nranks_env) > 1)
    run_real();
  else
    run_sim();
  return 0;
}
