// Figure 7: Octo-Tiger / HPX strong scaling (paper Sec. 5.4).
//
// Paper setup: Octo-Tiger "rotating star" on HPX, time per step, strong
// scaling over nodes; parcelports compared: lci, standard mpi, and mpix
// (MPICH VCI extension, libfabric backend), each at its optimal device/VCI
// count (lci needs 1-2 devices, mpix needs 8 VCIs to peak).
//
// Reproduction: the octo mini-app on minihpx (octree of subgrids, async
// ghost exchange per step over parcels). For each backend we sweep the
// device/VCI count and report the best, printing the count that won — the
// paper's observation is precisely that LCI peaks with fewer replicated
// resources than MPICH. Expected shape: lci < mpix < mpi in time per step.
#include <cstdio>
#include <vector>

#include "amt/octo.hpp"
#include "bench_common.hpp"

int main() {
  const int nthreads = std::max(2, bench::max_threads() / 2);
  octo::config_t base;
  base.grid_dim = static_cast<int>(bench::env_long("LCI_BENCH_OCTO_GRID", 4));
  base.subgrid_dim = 8;
  base.steps = static_cast<int>(bench::iters(6));
  base.nthreads = nthreads;
  bench::apply_net_env(&base.fabric);

  std::printf(
      "# Fig.7 reproduction: octree mini-app (Octo-Tiger stand-in) strong "
      "scaling\n"
      "# %d^3 subgrids of %d^3 cells, %d steps, %d worker threads/rank\n"
      "# device/VCI count swept per backend; the winning count is reported\n",
      base.grid_dim, base.subgrid_dim, base.steps, nthreads);
  bench::print_header("Octo mini-app",
                      "ranks  backend  s/step   best-devices  parcels");

  const int max_ranks = std::max(2, bench::max_threads() / 2);
  for (int ranks = 1; ranks <= max_ranks; ranks *= 2) {
    struct entry_t {
      lcw::backend_t backend;
      std::vector<int> device_counts;
    };
    const entry_t entries[] = {
        {lcw::backend_t::lci, {1, 2, 4}},
        {lcw::backend_t::mpi, {1}},
        {lcw::backend_t::mpix, {1, 2, 4, 8}},
    };
    for (const auto& entry : entries) {
      double best = -1;
      int best_devices = 0;
      std::size_t parcels = 0;
      for (const int ndevices : entry.device_counts) {
        if (ndevices > nthreads * 2) continue;
        octo::config_t config = base;
        config.backend = entry.backend;
        config.nranks = ranks;
        config.ndevices = ndevices;
        const auto result = octo::run(config);
        if (best < 0 || result.seconds_per_step < best) {
          best = result.seconds_per_step;
          best_devices = ndevices;
          parcels = result.parcels;
        }
      }
      std::printf("%5d  %7s  %7.4f  %12d  %7zu\n", ranks,
                  lcw::to_string(entry.backend), best, best_devices, parcels);
    }
  }
  return 0;
}
