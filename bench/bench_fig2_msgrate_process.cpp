// Figure 2: process-based message-rate microbenchmark.
//
// Paper setup: two nodes, one process per core, one thread per process, 8 B
// messages, 100k iterations per process; uni-directional message rate as the
// process count per node sweeps 1..128. LCI is compared against MPI and
// GASNet-EX (all driven through LCW).
//
// Reproduction: "processes" are single-threaded simulated ranks; the sweep is
// capped by LCI_BENCH_MAX_THREADS (default 8 per "node" -> 16 ranks) so the
// host is not hopelessly oversubscribed. Expected shape (paper Fig. 2): all
// libraries scale comparably in process mode — this is the baseline the
// thread-based Fig. 3 is judged against.
#include <cstdio>

#include "pingpong.hpp"

int main() {
  const int max_procs = bench::max_threads();
  const long iterations = bench::iters(2000);
  const lcw::backend_t backends[] = {lcw::backend_t::lci, lcw::backend_t::mpi,
                                     lcw::backend_t::gex};

  std::printf(
      "# Fig.2 reproduction: process-based message rate (8B AMs, ping-pong)\n"
      "# 'processes' = single-threaded simulated ranks per node (2 nodes)\n"
      "# iterations/process = %ld\n",
      iterations);
  bench::print_header("Process-based message rate",
                      "procs/node  backend  Mmsg/s  (aggregate uni-dir)");
  for (int procs : bench::pow2_up_to(max_procs)) {
    for (const auto backend : backends) {
      bench::pingpong_params_t params;
      params.backend = backend;
      params.nranks = 2 * procs;
      params.nthreads = 1;
      params.dedicated = false;
      params.use_am = true;
      params.msg_size = 8;
      params.iterations = iterations;
      const auto result = bench::run_pingpong(params);
      std::printf("%10d  %7s  %9.4f\n", procs, lcw::to_string(backend),
                  result.mmsg_per_sec);
    }
  }
  return 0;
}
