// Figure 2: process-based message-rate microbenchmark.
//
// Paper setup: two nodes, one process per core, one thread per process, 8 B
// messages, 100k iterations per process; uni-directional message rate as the
// process count per node sweeps 1..128. LCI is compared against MPI and
// GASNet-EX (all driven through LCW).
//
// Reproduction: "processes" are single-threaded simulated ranks; the sweep is
// capped by LCI_BENCH_MAX_THREADS (default 8 per "node" -> 16 ranks) so the
// host is not hopelessly oversubscribed. Expected shape (paper Fig. 2): all
// libraries scale comparably in process mode — this is the baseline the
// thread-based Fig. 3 is judged against. The lci backend also runs with
// eager coalescing on ("lci+agg"): single-threaded ranks batch little (one
// message in flight per rank), so on/off should be near-identical here —
// the contrast with Fig. 3's threaded sweep is the point.
#include <cstdio>

#include "pingpong.hpp"

int main() {
  const int max_procs = bench::max_threads();
  const long iterations = bench::iters(2000);
  struct variant_t {
    lcw::backend_t backend;
    bool aggregation;
    const char* label;
  };
  const variant_t variants[] = {{lcw::backend_t::lci, false, "lci"},
                                {lcw::backend_t::lci, true, "lci+agg"},
                                {lcw::backend_t::mpi, false, "mpi"},
                                {lcw::backend_t::gex, false, "gex"}};

  std::printf(
      "# Fig.2 reproduction: process-based message rate (8B AMs, ping-pong)\n"
      "# 'processes' = single-threaded simulated ranks per node (2 nodes)\n"
      "# iterations/process = %ld\n",
      iterations);
  bench::json_report_t report("fig2_msgrate_process");
  bench::print_header("Process-based message rate",
                      "procs/node  backend  Mmsg/s  (aggregate uni-dir)");
  for (int procs : bench::pow2_up_to(max_procs)) {
    for (const auto& variant : variants) {
      bench::pingpong_params_t params;
      params.backend = variant.backend;
      params.nranks = 2 * procs;
      params.nthreads = 1;
      params.dedicated = false;
      params.use_am = true;
      params.msg_size = 8;
      params.iterations = iterations;
      params.aggregation = variant.aggregation;
      const auto result = bench::run_pingpong(params);
      std::printf("%10d  %7s  %9.4f\n", procs, variant.label,
                  result.mmsg_per_sec);
      report.row()
          .field("procs_per_node", procs)
          .field("backend", std::string(lcw::to_string(variant.backend)))
          .field("aggregation", variant.aggregation ? 1 : 0)
          .field("msg_size", static_cast<long>(params.msg_size))
          .field("mmsg_per_sec", result.mmsg_per_sec);
    }
  }
  return 0;
}
