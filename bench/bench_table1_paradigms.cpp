// Table 1: how post_comm expresses every point-to-point paradigm by
// combining the direction, remote-buffer, and remote-completion optional
// arguments. This harness exercises each combination end-to-end on two
// simulated ranks and prints the table with a measured validity column.
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/lci.hpp"

namespace {

struct row_t {
  const char* direction;
  const char* remote_buffer;
  const char* remote_comp;
  const char* paper_validity;
  const char* description;
};

}  // namespace

int main() {
  std::printf(
      "# Table 1 reproduction: post_comm argument combinations.\n"
      "# 'get with signal' is implemented here via the simulated fabric's\n"
      "# read-with-notification (an extension; the paper's interconnects\n"
      "# lack RDMA-read-with-notification, Sec. 4.3).\n\n");
  std::printf("%-9s %-13s %-12s %-8s %-10s %s\n", "Direction", "RemoteBuffer",
              "RemoteComp", "Paper", "Measured", "Description");

  const row_t rows[] = {
      {"OUT", "none", "none", "Yes", "send"},
      {"OUT", "none", "specified", "Yes", "active message"},
      {"OUT", "specified", "none", "Yes", "RMA put"},
      {"OUT", "specified", "specified", "Yes", "RMA put w. signal"},
      {"IN", "none", "none", "Yes", "receive"},
      {"IN", "none", "specified", "No", "(invalid)"},
      {"IN", "specified", "none", "Yes", "RMA get"},
      {"IN", "specified", "specified", "Yes*", "RMA get w. signal (ext)"},
  };

  std::vector<std::string> measured(8, "?");

  lci::sim::spawn(2, [&](int rank) {
    lci::runtime_attr_t attr;
    attr.matching_engine_buckets = 1024;
    lci::g_runtime_init(attr);
    const int peer = 1 - rank;

    std::vector<char> window(4096, 0);
    lci::mr_t mr = lci::register_memory(window.data(), window.size());
    lci::rmr_t my_rmr = lci::get_rmr(mr);
    lci::rmr_t peer_rmr;
    // Exchange rmrs.
    {
      lci::comp_t sync = lci::alloc_sync(1);
      auto rs = lci::post_recv(peer, &peer_rmr, sizeof(peer_rmr), 999, sync);
      lci::status_t ss;
      do {
        ss = lci::post_send(peer, &my_rmr, sizeof(my_rmr), 999, {});
        lci::progress();
      } while (ss.error.is_retry());
      if (rs.error.is_posted()) lci::sync_wait(sync, nullptr);
      lci::free_comp(&sync);
    }
    lci::comp_t rcq = lci::alloc_cq();
    const lci::rcomp_t rcomp = lci::register_rcomp(rcq);
    lci::barrier();

    char buf[64] = "table1 payload";
    lci::comp_t sync = lci::alloc_sync(1);
    auto wait_am = [&](int row) {
      lci::status_t s;
      do {
        lci::progress();
        s = lci::cq_pop(rcq);
      } while (!s.error.is_done());
      if (s.buffer.base != nullptr) std::free(s.buffer.base);
      if (rank == 0) measured[static_cast<std::size_t>(row)] = "Yes";
    };

    // Row 0: send + Row 4: receive.
    {
      lci::comp_t rsync = lci::alloc_sync(1);
      char in[64] = {};
      auto rs = lci::post_recv(peer, in, sizeof(in), 1, rsync);
      lci::status_t ss;
      do {
        ss = lci::post_send(peer, buf, sizeof(buf), 1, sync);
        lci::progress();
      } while (ss.error.is_retry());
      if (ss.error.is_posted()) lci::sync_wait(sync, nullptr);
      if (rs.error.is_posted()) lci::sync_wait(rsync, nullptr);
      if (rank == 0) {
        measured[0] = "Yes";
        measured[4] = "Yes";
      }
      lci::free_comp(&rsync);
    }
    lci::barrier();

    // Row 1: active message.
    {
      lci::status_t ss;
      do {
        ss = lci::post_am(peer, buf, sizeof(buf), sync, rcomp);
        lci::progress();
      } while (ss.error.is_retry());
      if (ss.error.is_posted()) lci::sync_wait(sync, nullptr);
      wait_am(1);
    }
    lci::barrier();

    // Row 2: put (no signal).
    {
      lci::status_t ss;
      do {
        ss = lci::post_put(peer, buf, sizeof(buf), sync, peer_rmr, 0);
        lci::progress();
      } while (ss.error.is_retry());
      if (ss.error.is_posted()) lci::sync_wait(sync, nullptr);
      if (rank == 0) measured[2] = "Yes";
    }
    lci::barrier();

    // Row 3: put with signal.
    {
      lci::status_t ss;
      do {
        ss = lci::post_put_x(peer, buf, sizeof(buf), sync, peer_rmr, 0)
                 .remote_comp(rcomp)
                 .tag(5)();
        lci::progress();
      } while (ss.error.is_retry());
      if (ss.error.is_posted()) lci::sync_wait(sync, nullptr);
      wait_am(3);
    }
    lci::barrier();

    // Row 5: IN + remote comp, no remote buffer — must be rejected.
    {
      bool threw = false;
      try {
        (void)lci::post_comm_x(peer, buf, sizeof(buf), sync)
            .direction(lci::direction_t::in)
            .remote_comp(rcomp)();
      } catch (const lci::fatal_error_t&) {
        threw = true;
      }
      if (rank == 0) measured[5] = threw ? "No" : "BUG";
    }
    lci::barrier();

    // Row 6: get.
    {
      char in[64] = {};
      lci::status_t ss;
      do {
        ss = lci::post_get(peer, in, sizeof(in), sync, peer_rmr, 0);
        lci::progress();
      } while (ss.error.is_retry());
      if (ss.error.is_posted()) lci::sync_wait(sync, nullptr);
      if (rank == 0) measured[6] = "Yes";
    }
    lci::barrier();

    // Row 7: get with signal (extension).
    {
      char in[64] = {};
      lci::status_t ss;
      do {
        ss = lci::post_get_x(peer, in, sizeof(in), sync, peer_rmr, 0)
                 .remote_comp(rcomp)
                 .tag(6)();
        lci::progress();
      } while (ss.error.is_retry());
      if (ss.error.is_posted()) lci::sync_wait(sync, nullptr);
      wait_am(7);
    }
    lci::barrier();

    lci::deregister_rcomp(rcomp);
    lci::free_comp(&rcq);
    lci::free_comp(&sync);
    lci::deregister_memory(&mr);
    lci::g_runtime_fina();
  });

  for (int i = 0; i < 8; ++i) {
    const auto& row = rows[i];
    std::printf("%-9s %-13s %-12s %-8s %-10s %s\n", row.direction,
                row.remote_buffer, row.remote_comp, row.paper_validity,
                measured[static_cast<std::size_t>(i)].c_str(),
                row.description);
  }
  return 0;
}
