file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_msgrate_process.dir/bench_fig2_msgrate_process.cpp.o"
  "CMakeFiles/bench_fig2_msgrate_process.dir/bench_fig2_msgrate_process.cpp.o.d"
  "bench_fig2_msgrate_process"
  "bench_fig2_msgrate_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_msgrate_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
