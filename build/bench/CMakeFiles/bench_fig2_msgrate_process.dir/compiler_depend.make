# Empty compiler generated dependencies file for bench_fig2_msgrate_process.
# This may be replaced when dependencies are built.
