file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_paradigms.dir/bench_table1_paradigms.cpp.o"
  "CMakeFiles/bench_table1_paradigms.dir/bench_table1_paradigms.cpp.o.d"
  "bench_table1_paradigms"
  "bench_table1_paradigms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_paradigms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
