# Empty dependencies file for bench_table1_paradigms.
# This may be replaced when dependencies are built.
