# Empty dependencies file for bench_gbm_primitives.
# This may be replaced when dependencies are built.
