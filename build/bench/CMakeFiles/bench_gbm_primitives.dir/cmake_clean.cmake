file(REMOVE_RECURSE
  "CMakeFiles/bench_gbm_primitives.dir/bench_gbm_primitives.cpp.o"
  "CMakeFiles/bench_gbm_primitives.dir/bench_gbm_primitives.cpp.o.d"
  "bench_gbm_primitives"
  "bench_gbm_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gbm_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
