# Empty dependencies file for bench_fig3_msgrate_thread.
# This may be replaced when dependencies are built.
