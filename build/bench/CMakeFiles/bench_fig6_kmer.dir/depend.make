# Empty dependencies file for bench_fig6_kmer.
# This may be replaced when dependencies are built.
