file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_kmer.dir/bench_fig6_kmer.cpp.o"
  "CMakeFiles/bench_fig6_kmer.dir/bench_fig6_kmer.cpp.o.d"
  "bench_fig6_kmer"
  "bench_fig6_kmer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_kmer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
