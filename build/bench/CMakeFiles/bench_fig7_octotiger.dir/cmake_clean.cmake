file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_octotiger.dir/bench_fig7_octotiger.cpp.o"
  "CMakeFiles/bench_fig7_octotiger.dir/bench_fig7_octotiger.cpp.o.d"
  "bench_fig7_octotiger"
  "bench_fig7_octotiger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_octotiger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
