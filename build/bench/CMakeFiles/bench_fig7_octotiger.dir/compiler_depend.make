# Empty compiler generated dependencies file for bench_fig7_octotiger.
# This may be replaced when dependencies are built.
