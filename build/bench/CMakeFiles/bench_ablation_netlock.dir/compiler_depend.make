# Empty compiler generated dependencies file for bench_ablation_netlock.
# This may be replaced when dependencies are built.
