file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_netlock.dir/bench_ablation_netlock.cpp.o"
  "CMakeFiles/bench_ablation_netlock.dir/bench_ablation_netlock.cpp.o.d"
  "bench_ablation_netlock"
  "bench_ablation_netlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_netlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
