file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_resources.dir/bench_ablation_resources.cpp.o"
  "CMakeFiles/bench_ablation_resources.dir/bench_ablation_resources.cpp.o.d"
  "bench_ablation_resources"
  "bench_ablation_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
