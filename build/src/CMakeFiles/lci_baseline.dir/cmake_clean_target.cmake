file(REMOVE_RECURSE
  "liblci_baseline.a"
)
