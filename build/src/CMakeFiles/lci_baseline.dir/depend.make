# Empty dependencies file for lci_baseline.
# This may be replaced when dependencies are built.
