file(REMOVE_RECURSE
  "CMakeFiles/lci_baseline.dir/baseline/simgex.cpp.o"
  "CMakeFiles/lci_baseline.dir/baseline/simgex.cpp.o.d"
  "CMakeFiles/lci_baseline.dir/baseline/simmpi.cpp.o"
  "CMakeFiles/lci_baseline.dir/baseline/simmpi.cpp.o.d"
  "liblci_baseline.a"
  "liblci_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lci_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
