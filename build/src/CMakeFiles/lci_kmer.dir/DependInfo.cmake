
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kmer/fasta.cpp" "src/CMakeFiles/lci_kmer.dir/kmer/fasta.cpp.o" "gcc" "src/CMakeFiles/lci_kmer.dir/kmer/fasta.cpp.o.d"
  "/root/repo/src/kmer/kmer.cpp" "src/CMakeFiles/lci_kmer.dir/kmer/kmer.cpp.o" "gcc" "src/CMakeFiles/lci_kmer.dir/kmer/kmer.cpp.o.d"
  "/root/repo/src/kmer/pipeline.cpp" "src/CMakeFiles/lci_kmer.dir/kmer/pipeline.cpp.o" "gcc" "src/CMakeFiles/lci_kmer.dir/kmer/pipeline.cpp.o.d"
  "/root/repo/src/kmer/read_generator.cpp" "src/CMakeFiles/lci_kmer.dir/kmer/read_generator.cpp.o" "gcc" "src/CMakeFiles/lci_kmer.dir/kmer/read_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lci.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lci_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lci_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
