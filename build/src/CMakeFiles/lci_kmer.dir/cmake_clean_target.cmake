file(REMOVE_RECURSE
  "liblci_kmer.a"
)
