# Empty compiler generated dependencies file for lci_kmer.
# This may be replaced when dependencies are built.
