file(REMOVE_RECURSE
  "CMakeFiles/lci_kmer.dir/kmer/fasta.cpp.o"
  "CMakeFiles/lci_kmer.dir/kmer/fasta.cpp.o.d"
  "CMakeFiles/lci_kmer.dir/kmer/kmer.cpp.o"
  "CMakeFiles/lci_kmer.dir/kmer/kmer.cpp.o.d"
  "CMakeFiles/lci_kmer.dir/kmer/pipeline.cpp.o"
  "CMakeFiles/lci_kmer.dir/kmer/pipeline.cpp.o.d"
  "CMakeFiles/lci_kmer.dir/kmer/read_generator.cpp.o"
  "CMakeFiles/lci_kmer.dir/kmer/read_generator.cpp.o.d"
  "liblci_kmer.a"
  "liblci_kmer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lci_kmer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
