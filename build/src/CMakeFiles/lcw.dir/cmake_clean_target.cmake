file(REMOVE_RECURSE
  "liblcw.a"
)
