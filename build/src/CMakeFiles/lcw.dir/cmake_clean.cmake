file(REMOVE_RECURSE
  "CMakeFiles/lcw.dir/lcw/lcw.cpp.o"
  "CMakeFiles/lcw.dir/lcw/lcw.cpp.o.d"
  "CMakeFiles/lcw.dir/lcw/lcw_gex.cpp.o"
  "CMakeFiles/lcw.dir/lcw/lcw_gex.cpp.o.d"
  "CMakeFiles/lcw.dir/lcw/lcw_lci.cpp.o"
  "CMakeFiles/lcw.dir/lcw/lcw_lci.cpp.o.d"
  "CMakeFiles/lcw.dir/lcw/lcw_mpi.cpp.o"
  "CMakeFiles/lcw.dir/lcw/lcw_mpi.cpp.o.d"
  "liblcw.a"
  "liblcw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
