# Empty dependencies file for lcw.
# This may be replaced when dependencies are built.
