file(REMOVE_RECURSE
  "liblci_amt.a"
)
