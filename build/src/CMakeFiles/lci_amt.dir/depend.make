# Empty dependencies file for lci_amt.
# This may be replaced when dependencies are built.
