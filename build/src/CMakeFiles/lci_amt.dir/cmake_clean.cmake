file(REMOVE_RECURSE
  "CMakeFiles/lci_amt.dir/amt/minihpx.cpp.o"
  "CMakeFiles/lci_amt.dir/amt/minihpx.cpp.o.d"
  "CMakeFiles/lci_amt.dir/amt/octo.cpp.o"
  "CMakeFiles/lci_amt.dir/amt/octo.cpp.o.d"
  "liblci_amt.a"
  "liblci_amt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lci_amt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
