# Empty compiler generated dependencies file for lci_net.
# This may be replaced when dependencies are built.
