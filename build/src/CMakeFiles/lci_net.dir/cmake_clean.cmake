file(REMOVE_RECURSE
  "CMakeFiles/lci_net.dir/net/fabric.cpp.o"
  "CMakeFiles/lci_net.dir/net/fabric.cpp.o.d"
  "CMakeFiles/lci_net.dir/net/sim_device.cpp.o"
  "CMakeFiles/lci_net.dir/net/sim_device.cpp.o.d"
  "liblci_net.a"
  "liblci_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lci_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
