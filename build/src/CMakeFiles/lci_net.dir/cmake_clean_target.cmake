file(REMOVE_RECURSE
  "liblci_net.a"
)
