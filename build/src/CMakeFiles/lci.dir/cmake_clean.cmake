file(REMOVE_RECURSE
  "CMakeFiles/lci.dir/core/collective.cpp.o"
  "CMakeFiles/lci.dir/core/collective.cpp.o.d"
  "CMakeFiles/lci.dir/core/comp.cpp.o"
  "CMakeFiles/lci.dir/core/comp.cpp.o.d"
  "CMakeFiles/lci.dir/core/comp_graph.cpp.o"
  "CMakeFiles/lci.dir/core/comp_graph.cpp.o.d"
  "CMakeFiles/lci.dir/core/device.cpp.o"
  "CMakeFiles/lci.dir/core/device.cpp.o.d"
  "CMakeFiles/lci.dir/core/packet_pool.cpp.o"
  "CMakeFiles/lci.dir/core/packet_pool.cpp.o.d"
  "CMakeFiles/lci.dir/core/post.cpp.o"
  "CMakeFiles/lci.dir/core/post.cpp.o.d"
  "CMakeFiles/lci.dir/core/progress.cpp.o"
  "CMakeFiles/lci.dir/core/progress.cpp.o.d"
  "CMakeFiles/lci.dir/core/runtime.cpp.o"
  "CMakeFiles/lci.dir/core/runtime.cpp.o.d"
  "CMakeFiles/lci.dir/core/sim_bootstrap.cpp.o"
  "CMakeFiles/lci.dir/core/sim_bootstrap.cpp.o.d"
  "liblci.a"
  "liblci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
