file(REMOVE_RECURSE
  "liblci.a"
)
