
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/collective.cpp" "src/CMakeFiles/lci.dir/core/collective.cpp.o" "gcc" "src/CMakeFiles/lci.dir/core/collective.cpp.o.d"
  "/root/repo/src/core/comp.cpp" "src/CMakeFiles/lci.dir/core/comp.cpp.o" "gcc" "src/CMakeFiles/lci.dir/core/comp.cpp.o.d"
  "/root/repo/src/core/comp_graph.cpp" "src/CMakeFiles/lci.dir/core/comp_graph.cpp.o" "gcc" "src/CMakeFiles/lci.dir/core/comp_graph.cpp.o.d"
  "/root/repo/src/core/device.cpp" "src/CMakeFiles/lci.dir/core/device.cpp.o" "gcc" "src/CMakeFiles/lci.dir/core/device.cpp.o.d"
  "/root/repo/src/core/packet_pool.cpp" "src/CMakeFiles/lci.dir/core/packet_pool.cpp.o" "gcc" "src/CMakeFiles/lci.dir/core/packet_pool.cpp.o.d"
  "/root/repo/src/core/post.cpp" "src/CMakeFiles/lci.dir/core/post.cpp.o" "gcc" "src/CMakeFiles/lci.dir/core/post.cpp.o.d"
  "/root/repo/src/core/progress.cpp" "src/CMakeFiles/lci.dir/core/progress.cpp.o" "gcc" "src/CMakeFiles/lci.dir/core/progress.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/CMakeFiles/lci.dir/core/runtime.cpp.o" "gcc" "src/CMakeFiles/lci.dir/core/runtime.cpp.o.d"
  "/root/repo/src/core/sim_bootstrap.cpp" "src/CMakeFiles/lci.dir/core/sim_bootstrap.cpp.o" "gcc" "src/CMakeFiles/lci.dir/core/sim_bootstrap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lci_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
