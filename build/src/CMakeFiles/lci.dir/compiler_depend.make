# Empty compiler generated dependencies file for lci.
# This may be replaced when dependencies are built.
