file(REMOVE_RECURSE
  "CMakeFiles/test_attrs.dir/test_attrs.cpp.o"
  "CMakeFiles/test_attrs.dir/test_attrs.cpp.o.d"
  "test_attrs"
  "test_attrs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
