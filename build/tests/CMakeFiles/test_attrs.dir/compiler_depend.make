# Empty compiler generated dependencies file for test_attrs.
# This may be replaced when dependencies are built.
