# Empty dependencies file for test_post_comm.
# This may be replaced when dependencies are built.
