file(REMOVE_RECURSE
  "CMakeFiles/test_post_comm.dir/test_post_comm.cpp.o"
  "CMakeFiles/test_post_comm.dir/test_post_comm.cpp.o.d"
  "test_post_comm"
  "test_post_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_post_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
