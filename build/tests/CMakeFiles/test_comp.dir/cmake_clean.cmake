file(REMOVE_RECURSE
  "CMakeFiles/test_comp.dir/test_comp.cpp.o"
  "CMakeFiles/test_comp.dir/test_comp.cpp.o.d"
  "test_comp"
  "test_comp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
