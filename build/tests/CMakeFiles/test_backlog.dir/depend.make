# Empty dependencies file for test_backlog.
# This may be replaced when dependencies are built.
