file(REMOVE_RECURSE
  "CMakeFiles/test_backlog.dir/test_backlog.cpp.o"
  "CMakeFiles/test_backlog.dir/test_backlog.cpp.o.d"
  "test_backlog"
  "test_backlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
