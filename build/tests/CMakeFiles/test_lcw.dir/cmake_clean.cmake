file(REMOVE_RECURSE
  "CMakeFiles/test_lcw.dir/test_lcw.cpp.o"
  "CMakeFiles/test_lcw.dir/test_lcw.cpp.o.d"
  "test_lcw"
  "test_lcw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lcw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
