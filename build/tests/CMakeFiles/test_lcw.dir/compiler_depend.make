# Empty compiler generated dependencies file for test_lcw.
# This may be replaced when dependencies are built.
