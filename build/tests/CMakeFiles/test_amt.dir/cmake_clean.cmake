file(REMOVE_RECURSE
  "CMakeFiles/test_amt.dir/test_amt.cpp.o"
  "CMakeFiles/test_amt.dir/test_amt.cpp.o.d"
  "test_amt"
  "test_amt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_amt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
