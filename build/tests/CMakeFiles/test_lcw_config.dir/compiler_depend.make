# Empty compiler generated dependencies file for test_lcw_config.
# This may be replaced when dependencies are built.
