file(REMOVE_RECURSE
  "CMakeFiles/test_lcw_config.dir/test_lcw_config.cpp.o"
  "CMakeFiles/test_lcw_config.dir/test_lcw_config.cpp.o.d"
  "test_lcw_config"
  "test_lcw_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lcw_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
