file(REMOVE_RECURSE
  "CMakeFiles/test_netmodels.dir/test_netmodels.cpp.o"
  "CMakeFiles/test_netmodels.dir/test_netmodels.cpp.o.d"
  "test_netmodels"
  "test_netmodels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netmodels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
