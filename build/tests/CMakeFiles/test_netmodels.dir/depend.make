# Empty dependencies file for test_netmodels.
# This may be replaced when dependencies are built.
