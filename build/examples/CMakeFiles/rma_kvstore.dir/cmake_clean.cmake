file(REMOVE_RECURSE
  "CMakeFiles/rma_kvstore.dir/rma_kvstore.cpp.o"
  "CMakeFiles/rma_kvstore.dir/rma_kvstore.cpp.o.d"
  "rma_kvstore"
  "rma_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rma_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
