# Empty compiler generated dependencies file for rma_kvstore.
# This may be replaced when dependencies are built.
