file(REMOVE_RECURSE
  "CMakeFiles/octotiger_mini.dir/octotiger_mini.cpp.o"
  "CMakeFiles/octotiger_mini.dir/octotiger_mini.cpp.o.d"
  "octotiger_mini"
  "octotiger_mini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octotiger_mini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
