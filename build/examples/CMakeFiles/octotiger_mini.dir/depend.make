# Empty dependencies file for octotiger_mini.
# This may be replaced when dependencies are built.
