# Empty compiler generated dependencies file for irpclib.
# This may be replaced when dependencies are built.
