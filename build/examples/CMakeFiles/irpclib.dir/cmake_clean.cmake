file(REMOVE_RECURSE
  "CMakeFiles/irpclib.dir/irpclib.cpp.o"
  "CMakeFiles/irpclib.dir/irpclib.cpp.o.d"
  "irpclib"
  "irpclib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irpclib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
