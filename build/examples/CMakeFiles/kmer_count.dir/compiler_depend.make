# Empty compiler generated dependencies file for kmer_count.
# This may be replaced when dependencies are built.
