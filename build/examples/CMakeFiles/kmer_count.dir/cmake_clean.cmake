file(REMOVE_RECURSE
  "CMakeFiles/kmer_count.dir/kmer_count.cpp.o"
  "CMakeFiles/kmer_count.dir/kmer_count.cpp.o.d"
  "kmer_count"
  "kmer_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmer_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
