# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_irpclib "/root/repo/build/examples/irpclib")
set_tests_properties(example_irpclib PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kmer_count "/root/repo/build/examples/kmer_count" "lci_mt" "2" "2" "20000" "17")
set_tests_properties(example_kmer_count PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_octotiger_mini "/root/repo/build/examples/octotiger_mini" "lci" "2" "2" "3" "3" "2")
set_tests_properties(example_octotiger_mini PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rma_kvstore "/root/repo/build/examples/rma_kvstore" "3" "32")
set_tests_properties(example_rma_kvstore PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
