#!/usr/bin/env bash
# Local multi-process launcher for the real net backends (shm / tcp).
#
# Usage:
#   scripts/launch_local.sh -n <nranks> [-b shm|tcp] [-t <timeout_s>] -- <prog> [args...]
#
# Forks <nranks> copies of <prog>, each with the bootstrap environment the
# backends expect (LCI_BACKEND, LCI_RANK, LCI_NRANKS, LCI_JOB_DIR, LCI_JOB_ID)
# pointing at a fresh job directory. Waits for all ranks; the exit status is
# the first nonzero rank status (or 124 on timeout). Cleans up the job
# directory and any leftover SHM segment, including when ranks crash.
set -u

nranks=2
backend=shm
timeout_s=300

while getopts "n:b:t:h" opt; do
  case "$opt" in
    n) nranks="$OPTARG" ;;
    b) backend="$OPTARG" ;;
    t) timeout_s="$OPTARG" ;;
    h|*)
      sed -n '2,13p' "$0"
      exit 2
      ;;
  esac
done
shift $((OPTIND - 1))

if [ "$#" -lt 1 ]; then
  echo "launch_local.sh: missing program (see -h)" >&2
  exit 2
fi
case "$backend" in
  shm|tcp) ;;
  *)
    echo "launch_local.sh: -b must be shm or tcp (got '$backend')" >&2
    exit 2
    ;;
esac
if ! [ "$nranks" -ge 1 ] 2>/dev/null; then
  echo "launch_local.sh: -n must be a positive integer" >&2
  exit 2
fi

# Reap leftovers of crashed jobs before launching: a job dir whose boot
# liveness markers are all unlocked (flock succeeds) has no live rank — its
# dir and matching /dev/shm segment are stale. Live jobs hold their flocks,
# so this never touches a running job; dirs with no markers yet are skipped
# (they may be mid-launch).
for stale_dir in "${TMPDIR:-/tmp}"/lci-job.*; do
  [ -d "$stale_dir" ] || continue
  markers=("$stale_dir"/boot-* "$stale_dir"/alive-*)
  live=0
  seen=0
  for marker in "${markers[@]}"; do
    [ -e "$marker" ] || continue
    seen=1
    if ! flock -n "$marker" true 2>/dev/null; then
      live=1
      break
    fi
  done
  if [ "$seen" -eq 1 ] && [ "$live" -eq 0 ]; then
    stale_id=$(basename "$stale_dir" | tr -d '.')
    rm -rf "$stale_dir"
    rm -f "/dev/shm/lci-$stale_id"
  fi
done

job_dir=$(mktemp -d "${TMPDIR:-/tmp}/lci-job.XXXXXX")
job_id=$(basename "$job_dir" | tr -d '.')

cleanup() {
  # Kill stragglers (e.g. survivors hanging after a fault-test SIGKILL), then
  # remove the job dir and the SHM segment rank 0 may not have unlinked.
  for pid in "${pids[@]:-}"; do
    kill -9 "$pid" 2>/dev/null
  done
  rm -rf "$job_dir"
  rm -f "/dev/shm/lci-$job_id"
}
trap cleanup EXIT

pids=()
for rank in $(seq 0 $((nranks - 1))); do
  LCI_BACKEND="$backend" LCI_RANK="$rank" LCI_NRANKS="$nranks" \
    LCI_JOB_DIR="$job_dir" LCI_JOB_ID="$job_id" "$@" &
  pids+=($!)
done

# Bounded wait: poll the ranks so a hung job turns into a clean timeout.
status=0
deadline=$(($(date +%s) + timeout_s))
for i in $(seq 0 $((nranks - 1))); do
  pid="${pids[$i]}"
  while kill -0 "$pid" 2>/dev/null; do
    if [ "$(date +%s)" -ge "$deadline" ]; then
      echo "launch_local.sh: timeout after ${timeout_s}s" >&2
      exit 124
    fi
    sleep 0.2
  done
  wait "$pid"
  rc=$?
  if [ "$rc" -ne 0 ] && [ "$status" -eq 0 ]; then
    status=$rc
    echo "launch_local.sh: rank $i exited with status $rc" >&2
  fi
done
exit "$status"
