#!/usr/bin/env python3
"""Per-stage time breakdown from a Chrome trace_event dump.

Reads the JSON written by lci::trace_dump_json() (or the LCI_TRACE_DUMP
bench hook) and reports, for each operation kind (eager, eager_batch,
rendezvous, recv), how the post-to-completion interval decomposes into
stages: time inside the post() call itself, residency in an aggregation
slot, residency in the retry backlog, and time on the wire. Instants
(coalesce_append, match, rts/rtr/fin) are reported as counts.

Spans in the dump are async begin/end pairs keyed by op id; the stage
spans of one operation (post call, batch_slot and backlog residency)
share its id, so the breakdown is a per-id join. Wire spans are the
exception: the net layer allocates them their own ids (a coalesced batch
is one wire message carrying many ops), so wire hops are summarized as
their own section rather than as a per-op column.

With device_shards > 1 each shard is its own net device, and the wire
span's *begin* event records the source device index in its tag field
(the end event does not repeat it — the join takes the shard from the
begin). Those spans are additionally broken down per source shard, which
is how an affinity-routing imbalance shows up: one hot shard carrying
most hops (a broken steer) versus an even spread (threads landed on
their own endpoints).

Usage:
  scripts/trace_summary.py TRACE.json [--json]
"""

import argparse
import collections
import json
import sys

# Span kinds that classify an op id as one operation of that kind.
OP_KINDS = ("eager", "eager_batch", "rendezvous", "recv")
# Per-op stage spans joined on the op id.
STAGE_KINDS = ("post", "batch_slot", "backlog")
INSTANT_KINDS = ("coalesce_append", "match", "rts", "rtr", "fin")


def percentile(sorted_vals, q):
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(q * (len(sorted_vals) - 1) + 0.5))
    return sorted_vals[idx]


def stats(vals):
    vals = sorted(vals)
    return {
        "count": len(vals),
        "mean_us": sum(vals) / len(vals) if vals else 0.0,
        "p50_us": percentile(vals, 0.50),
        "p99_us": percentile(vals, 0.99),
        "max_us": vals[-1] if vals else 0.0,
    }


def load_spans(path):
    """Returns (spans, wire_by_shard, instants, unpaired): spans maps op id
    -> kind -> list of durations in us; wire_by_shard maps the wire begin
    event's tag (the source device/shard index) -> list of durations;
    instants maps name -> count."""
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents", [])
    open_begins = {}   # (id, name) -> stack of (begin ts, begin tag)
    spans = collections.defaultdict(lambda: collections.defaultdict(list))
    wire_by_shard = collections.defaultdict(list)
    instants = collections.Counter()
    unpaired = 0
    for ev in sorted(events, key=lambda e: e.get("ts", 0.0)):
        name = ev.get("name")
        phase = ev.get("ph")
        if phase == "i":
            instants[name] += 1
            continue
        if phase not in ("b", "e"):
            continue
        key = (ev.get("id"), name)
        if phase == "b":
            tag = (ev.get("args") or {}).get("tag")
            open_begins.setdefault(key, []).append((ev.get("ts", 0.0), tag))
        else:
            stack = open_begins.get(key)
            if not stack:
                unpaired += 1
                continue
            begin_ts, begin_tag = stack.pop()
            op_id = int(str(ev.get("id")), 16)
            duration = ev.get("ts", 0.0) - begin_ts
            spans[op_id][name].append(duration)
            # The source shard rides only on the begin event (the end event
            # reports the wire error code in place of it).
            if name == "wire" and begin_tag is not None:
                wire_by_shard[begin_tag].append(duration)
    unpaired += sum(len(s) for s in open_begins.values())
    return spans, wire_by_shard, instants, unpaired


def summarize(spans):
    """Returns (op-kind -> stage -> stats, wire-hop stats, unclassified)."""
    by_kind = collections.defaultdict(
        lambda: collections.defaultdict(list))
    wire = []
    unclassified = 0
    for _op_id, kinds in spans.items():
        wire.extend(kinds.get("wire", []))
        op_kind = next((k for k in OP_KINDS if k in kinds), None)
        if op_kind is None:
            # Ids with no op-lifecycle span: wire hops (own net-layer ids),
            # engine sleeps, bare posts of sampled-out ops.
            unclassified += 1
            continue
        bucket = by_kind[op_kind]
        bucket["total"].append(sum(kinds[op_kind]))
        for stage in STAGE_KINDS:
            if stage in kinds:
                bucket[stage].append(sum(kinds[stage]))
    summary = {}
    for op_kind, stages in by_kind.items():
        summary[op_kind] = {name: stats(vals)
                            for name, vals in stages.items()}
    return summary, stats(wire) if wire else None, unclassified


def print_row(name, s):
    print(f"  {name:<12}{s['count']:>8}{s['mean_us']:>10.2f}"
          f"{s['p50_us']:>10.2f}{s['p99_us']:>10.2f}"
          f"{s['max_us']:>10.2f}")


def print_table(summary, wire, wire_by_shard, instants, unpaired,
                unclassified):
    header = (f"  {'stage':<12}{'count':>8}{'mean_us':>10}{'p50_us':>10}"
              f"{'p99_us':>10}{'max_us':>10}")
    cols = ["total"] + list(STAGE_KINDS)
    for op_kind in OP_KINDS:
        stages = summary.get(op_kind)
        if not stages:
            continue
        n = stages["total"]["count"]
        print(f"\n{op_kind}: {n} op(s)")
        print(header)
        for col in cols:
            s = stages.get(col)
            if s is not None:
                print_row(col, s)
    if wire:
        print(f"\nwire hops (one per message; a batch is one message):")
        print(header)
        print_row("wire", wire)
    if wire_by_shard and len(wire_by_shard) > 1:
        # Only worth a section when there is more than one source device:
        # the spread (or skew) across shards is the signal.
        total = sum(len(v) for v in wire_by_shard.values())
        print(f"\nwire hops by source shard (device_shards routing):")
        print(header)
        for shard in sorted(wire_by_shard):
            s = stats(wire_by_shard[shard])
            share = s["count"] / total if total else 0.0
            print_row(f"shard {shard}", s)
            print(f"  {'':<12}{share:>7.0%} of hops")
    if instants:
        print("\ninstants:")
        for name in INSTANT_KINDS:
            if instants.get(name):
                print(f"  {name:<16}{instants[name]:>8}")
    if unpaired:
        print(f"\nnote: {unpaired} unpaired span event(s) "
              f"(ring wraparound drops the oldest events first)")
    if unclassified:
        print(f"note: {unclassified} id(s) without an op-lifecycle span "
              f"(batch carriers, engine sleeps, sampled-out posts)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace_event JSON dump")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output")
    args = parser.parse_args()
    spans, wire_by_shard, instants, unpaired = load_spans(args.trace)
    summary, wire, unclassified = summarize(spans)
    if not summary:
        print("no op-lifecycle spans found (was tracing on?)",
              file=sys.stderr)
        return 1
    if args.json:
        json.dump({"ops": summary, "wire": wire,
                   "wire_by_shard": {str(k): stats(v)
                                     for k, v in wire_by_shard.items()},
                   "instants": dict(instants), "unpaired": unpaired,
                   "unclassified": unclassified},
                  sys.stdout, indent=1, sort_keys=True)
        print()
    else:
        print_table(summary, wire, wire_by_shard, instants, unpaired,
                    unclassified)
    return 0


if __name__ == "__main__":
    sys.exit(main())
