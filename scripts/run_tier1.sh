#!/usr/bin/env bash
# Runs the tier-1 test suite twice: once in the default build and once with
# ThreadSanitizer (LCI_SANITIZE=thread). CI gate: both passes must be green.
#
# Usage: scripts/run_tier1.sh [build-dir] [tsan-build-dir]
#   build-dir       default: build
#   tsan-build-dir  default: build-tsan
#
# Environment:
#   CTEST_PARALLEL  parallel ctest jobs (default: 8)
#   CMAKE_ARGS      extra arguments forwarded to both cmake configures
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
tsan_dir="${2:-${repo_root}/build-tsan}"
jobs="${CTEST_PARALLEL:-8}"

configure_and_test() {
  local dir="$1"
  shift
  local label="$1"
  shift
  echo "== ${label}: configure + build (${dir})"
  # shellcheck disable=SC2086
  cmake -S "${repo_root}" -B "${dir}" ${CMAKE_ARGS:-} "$@"
  cmake --build "${dir}" -j
  echo "== ${label}: ctest -L tier1 -j ${jobs}"
  ctest --test-dir "${dir}" -L tier1 -j "${jobs}" --output-on-failure
}

configure_and_test "${build_dir}" "default"
configure_and_test "${tsan_dir}" "thread-sanitizer" -DLCI_SANITIZE=thread

echo "== tier-1: both passes green"
