#!/usr/bin/env bash
# Runs the tier-1 test suite four times: the default build, ThreadSanitizer
# (LCI_SANITIZE=thread), AddressSanitizer (LCI_SANITIZE=address), and
# UndefinedBehaviorSanitizer (LCI_SANITIZE=undefined). CI gate: every leg
# must be green. A per-leg summary table prints at the end (legs keep
# running after a failure so the table shows every result).
#
# Usage: scripts/run_tier1.sh [build-dir] [tsan-dir] [asan-dir] [ubsan-dir]
#   build-dir       default: build
#   tsan-build-dir  default: build-tsan
#   asan-build-dir  default: build-asan
#   ubsan-build-dir default: build-ubsan
#
# Environment:
#   CTEST_PARALLEL  parallel ctest jobs (default: 8)
#   CMAKE_ARGS      extra arguments forwarded to all cmake configures
#   LCI_TIER1_LEGS  space-separated subset of "default tsan asan ubsan"
set -uo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
tsan_dir="${2:-${repo_root}/build-tsan}"
asan_dir="${3:-${repo_root}/build-asan}"
ubsan_dir="${4:-${repo_root}/build-ubsan}"
jobs="${CTEST_PARALLEL:-8}"
legs="${LCI_TIER1_LEGS:-default tsan asan ubsan}"

summary_labels=()
summary_results=()
failures=0

configure_and_test() {
  local dir="$1"
  shift
  local label="$1"
  shift
  local result="PASS"
  echo "== ${label}: configure + build (${dir})"
  # shellcheck disable=SC2086
  if cmake -S "${repo_root}" -B "${dir}" ${CMAKE_ARGS:-} "$@" &&
     cmake --build "${dir}" -j; then
    echo "== ${label}: ctest -L tier1 -j ${jobs}"
    if ! ctest --test-dir "${dir}" -L tier1 -j "${jobs}" --output-on-failure
    then
      result="FAIL (tests)"
    fi
  else
    result="FAIL (build)"
  fi
  [[ "${result}" == "PASS" ]] || failures=$((failures + 1))
  summary_labels+=("${label}")
  summary_results+=("${result}")
}

for leg in ${legs}; do
  case "${leg}" in
    default) configure_and_test "${build_dir}" "default" ;;
    tsan)
      configure_and_test "${tsan_dir}" "thread-sanitizer" \
        -DLCI_SANITIZE=thread
      ;;
    asan)
      configure_and_test "${asan_dir}" "address-sanitizer" \
        -DLCI_SANITIZE=address
      ;;
    ubsan)
      configure_and_test "${ubsan_dir}" "ub-sanitizer" \
        -DLCI_SANITIZE=undefined
      ;;
    *)
      echo "unknown leg: ${leg}" >&2
      exit 2
      ;;
  esac
done

echo
echo "== tier-1 summary"
printf '%-20s %s\n' "leg" "result"
printf '%-20s %s\n' "---" "------"
for i in "${!summary_labels[@]}"; do
  printf '%-20s %s\n' "${summary_labels[$i]}" "${summary_results[$i]}"
done

if [[ "${failures}" -ne 0 ]]; then
  echo "== tier-1: ${failures} leg(s) failed"
  exit 1
fi
echo "== tier-1: all legs green"
