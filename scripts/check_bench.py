#!/usr/bin/env python3
"""Benchmark regression gate for the CI bench-smoke job.

Compares freshly generated BENCH_*.json reports against the checked-in
baselines. Rows are joined on their configuration fields (everything except
the measured metric); each joined pair is classified:

  FAIL  metric regressed by more than --fail-threshold (default 35%)
  WARN  metric regressed by more than --warn-threshold (default 10%)
  ok    within noise, or an improvement

Regressions below the fail threshold never fail the job: the smoke runs are
short and CI machines are noisy, so the gate only catches order-of-magnitude
breakage (a lost fast path, an accidental O(n^2)), not percent-level drift.
Rows present on only one side are warnings (schema drift), never failures.

The fig3 report additionally carries a shape invariant from the aggregation
work: eager coalescing (lci+agg) must beat plain lci by >= --agg-factor
(default 2.0) in at least one mode/lock-model/thread-count configuration.
That is the headline claim of the coalescing PR; if no configuration reaches
it, something structural broke even if every individual row stayed within
the regression threshold. (Best-of-any-configuration, not a fixed cell: on
an oversubscribed CI host which configuration peaks varies run to run, but
*some* configuration clearing 2x is stable.)

--results-dir may be given more than once: rows are merged by taking the
best value per configuration across the runs. A short smoke run on a busy
CI machine can lose 40% on any single row to scheduler noise alone; a row
only fails the gate if it is slow in *every* run, which is what a real
regression looks like. The CI job runs the suite twice.

Usage:
  scripts/check_bench.py --baseline-dir . \
      --results-dir build/bench_reports1 --results-dir build/bench_reports2
  scripts/check_bench.py --self-test
"""

import argparse
import json
import os
import sys

# Per-bench metric configuration: (metric field, True if higher is better).
# Fields listed in IGNORED are measurements, not configuration, and are
# excluded from the join key.
METRICS = {
    "fig2_msgrate_process": ("mmsg_per_sec", True),
    "fig3_msgrate_thread": ("mmsg_per_sec", True),
    "latency": ("median_us", False),
}
IGNORED_FIELDS = {"mmsg_per_sec", "gb_per_sec", "median_us", "p99_us",
                  "seconds", "retry_lock", "route_cache_hits"}


def load_report(path):
    with open(path) as f:
        return json.load(f)


def row_key(row):
    return tuple(sorted((k, v) for k, v in row.items()
                        if k not in IGNORED_FIELDS))


def fmt_key(key):
    return " ".join(f"{k}={v}" for k, v in key)


def compare_bench(name, baseline, results, warn_threshold, fail_threshold):
    """Returns (failures, warnings) as lists of message strings."""
    metric, higher_better = METRICS[name]
    base_rows = {row_key(r): r for r in baseline.get("rows", [])}
    new_rows = {row_key(r): r for r in results.get("rows", [])}
    failures, warnings = [], []

    for key in base_rows.keys() - new_rows.keys():
        warnings.append(f"{name}: row missing from results: {fmt_key(key)}")
    for key in new_rows.keys() - base_rows.keys():
        warnings.append(f"{name}: row not in baseline: {fmt_key(key)}")

    for key in sorted(base_rows.keys() & new_rows.keys()):
        old = base_rows[key].get(metric)
        new = new_rows[key].get(metric)
        if old is None or new is None:
            warnings.append(f"{name}: {metric} missing for {fmt_key(key)}")
            continue
        if old <= 0:
            warnings.append(f"{name}: non-positive baseline for "
                            f"{fmt_key(key)}")
            continue
        # Regression fraction: how much worse the new number is, in the
        # direction that matters for this metric.
        regression = (old - new) / old if higher_better else (new - old) / old
        detail = (f"{name}: {fmt_key(key)}: {metric} {old:.4g} -> {new:.4g} "
                  f"({regression * 100:+.1f}% regression)")
        if regression > fail_threshold:
            failures.append(detail)
        elif regression > warn_threshold:
            warnings.append(detail)
    return failures, warnings


def check_agg_invariant(results, agg_factor):
    """fig3 shape invariant: coalescing still pays off at scale."""
    rows = results.get("rows", [])
    configs = {}
    for row in rows:
        if row.get("backend") != "lci":
            continue
        key = (row.get("mode"), row.get("lock_model"))
        threads = row.get("threads", 0)
        entry = configs.setdefault(key, {})
        slot = entry.setdefault(threads, {})
        slot[row.get("aggregation", 0)] = row.get("mmsg_per_sec", 0.0)
    best = 0.0
    best_desc = "no lci/lci+agg row pairs found"
    for (mode, model), by_threads in configs.items():
        for threads, pair in by_threads.items():
            if 0 not in pair or 1 not in pair or pair[0] <= 0:
                continue
            ratio = pair[1] / pair[0]
            if ratio > best:
                best = ratio
                best_desc = (f"{mode}/{model} @ {threads} threads: "
                             f"lci+agg/lci = {ratio:.2f}x")
    if best >= agg_factor:
        return None, f"aggregation invariant holds: {best_desc}"
    return (f"fig3 aggregation invariant violated: best ratio {best:.2f}x "
            f"< {agg_factor:.1f}x ({best_desc})"), None


def check_cliff_invariant(results, noise=0.20):
    """fig3 shape invariant from the device-sharding work: the non-aggregated
    lci message rate must not fall off a cliff between 4 and 8 threads. With
    affinity-routed shards the curve is monotone; an 8-thread rate below the
    4-thread rate (beyond the noise margin) means the shard routing or the
    per-shard CQ round-robin broke and threads are serializing again.
    The margin is dimensioned against observed smoke noise: short runs on an
    oversubscribed host swing individual cells ~20%, while the pre-sharding
    cliff this guards against was a 29% drop (1.09 -> 0.77 Mmsg/s)."""
    rows = results.get("rows", [])
    by_config = {}
    for row in rows:
        if row.get("backend") != "lci" or row.get("aggregation", 0) != 0:
            continue
        key = (row.get("mode"), row.get("lock_model"))
        by_config.setdefault(key, {})[row.get("threads", 0)] = \
            row.get("mmsg_per_sec", 0.0)
    failures = []
    checked = 0
    for (mode, model), by_threads in sorted(by_config.items()):
        if 4 not in by_threads or 8 not in by_threads:
            continue
        checked += 1
        if by_threads[8] < by_threads[4] * (1.0 - noise):
            failures.append(
                f"fig3 thread-scaling cliff: {mode}/{model} non-aggregated "
                f"lci rate drops {by_threads[4]:.3f} -> {by_threads[8]:.3f} "
                f"Mmsg/s from 4 to 8 threads (> {noise:.0%} noise margin)")
    if failures:
        return failures, None
    return [], (f"thread-scaling invariant holds: 8T >= 4T non-aggregated "
                f"in {checked} config(s)")


def check_single_thread_agg_invariant(results, tolerance=0.15):
    """fig3 shape invariant from the single-poster bypass: with one posting
    thread, enabling aggregation must cost nothing (the bypass sends the
    traffic straight through). The check is the *median* lci+agg/lci ratio
    across all mode/lock-model configs at 1 thread, not a per-config gate:
    on an oversubscribed CI host any single 1-thread cell can swing 2x
    either way run to run, but a broken bypass depresses every config at
    once, which the median sees through the noise. The tolerance is
    noise-dimensioned too (observed clean-run medians sit at 0.94-1.34):
    the pre-bypass penalty this guards against pushed the median to ~0.75,
    well past the 0.85 trip point."""
    rows = results.get("rows", [])
    by_config = {}
    for row in rows:
        if row.get("backend") != "lci" or row.get("threads", 0) != 1:
            continue
        key = (row.get("mode"), row.get("lock_model"))
        by_config.setdefault(key, {})[row.get("aggregation", 0)] = \
            row.get("mmsg_per_sec", 0.0)
    ratios = []
    for (mode, model), pair in sorted(by_config.items()):
        if 0 not in pair or 1 not in pair or pair[0] <= 0:
            continue
        ratios.append(pair[1] / pair[0])
    if not ratios:
        return [], "single-thread aggregation invariant: no row pairs found"
    ratios.sort()
    n = len(ratios)
    median = (ratios[n // 2] if n % 2 else
              (ratios[n // 2 - 1] + ratios[n // 2]) / 2.0)
    if median < 1.0 - tolerance:
        return [(f"fig3 single-thread aggregation penalty: median "
                 f"lci+agg/lci ratio {median:.2f} < {1.0 - tolerance:.2f} "
                 f"across {n} config(s) at 1 thread (bypass not engaging)")], \
               None
    return [], (f"single-thread aggregation invariant holds: median "
                f"lci+agg/lci ratio {median:.2f} across {n} config(s)")


def check_recv_path_invariant(results, floor):
    """fig3 absolute-floor invariant from the lock-free receive-path work:
    the best non-aggregated lci rate at 8 threads, across all mode/lock-model
    configurations, must clear `floor` Mmsg/s (default 1.0527 = the 0.915
    pre-sharding baseline + the 15% the shard-steered matching engine,
    MPSC completion queues, and sharded packet pools bought), and that best
    row must report retry_lock == 0 — the receive path took every completion
    and packet without once spinning on a device lock. Best-of-any-config
    (like the aggregation invariant) because which configuration peaks on an
    oversubscribed CI host varies run to run, but *some* config clearing the
    floor is stable; the CI job merges two passes best-per-row first."""
    best = None
    for row in results.get("rows", []):
        if row.get("backend") != "lci" or row.get("aggregation", 0) != 0 or \
           row.get("threads", 0) != 8:
            continue
        if best is None or \
           row.get("mmsg_per_sec", 0.0) > best.get("mmsg_per_sec", 0.0):
            best = row
    if best is None:
        return [], ("recv-path invariant: no 8-thread non-aggregated lci "
                    "rows (nothing to check)")
    rate = best.get("mmsg_per_sec", 0.0)
    desc = (f"{best.get('mode')}/{best.get('lock_model')} @ 8 threads: "
            f"{rate:.4f} Mmsg/s, retry_lock={best.get('retry_lock', 0)}")
    failures = []
    if rate < floor:
        failures.append(
            f"fig3 recv-path floor violated: best 8-thread non-aggregated "
            f"lci rate {rate:.4f} < {floor:.4f} Mmsg/s ({desc})")
    if best.get("retry_lock", 0) != 0:
        failures.append(
            f"fig3 recv-path lock invariant violated: best 8-thread "
            f"non-aggregated lci row took {best.get('retry_lock')} device-"
            f"lock retries; the receive path must be lock-free ({desc})")
    if failures:
        return failures, None
    return [], f"recv-path invariant holds: {desc} >= {floor:.4f}"


def check_reg_cache_invariant(results_dirs, min_rate):
    """Registration-cache invariant from the net-backend work: on the
    real-transport fig4 sweep the receive buffer is reused every iteration,
    so after the first (cold) registration every rendezvous receive must hit
    the cache. Rows whose reg_hits + reg_misses is large enough to be a
    steady-state sample (>= 8 registrations) must show a hit rate of at
    least min_rate; eager rows (no registrations) are skipped. Reports are
    named BENCH_fig4_bandwidth_<net>.json — absent reports (a sim-only run)
    simply mean there is nothing to check."""
    failures, checked = [], 0
    for results_dir in results_dirs:
        if not os.path.isdir(results_dir):
            continue
        for fname in sorted(os.listdir(results_dir)):
            if not fname.startswith("BENCH_fig4_bandwidth_") or \
               not fname.endswith(".json"):
                continue
            report = load_report(os.path.join(results_dir, fname))
            for row in report.get("rows", []):
                hits = row.get("reg_hits", 0)
                misses = row.get("reg_misses", 0)
                total = hits + misses
                if total < 8:
                    continue
                checked += 1
                rate = hits / total
                if rate < min_rate:
                    failures.append(
                        f"reg-cache hit-rate invariant violated: "
                        f"{fname} net={row.get('net')} "
                        f"msg_size={row.get('msg_size')}: "
                        f"{hits}/{total} = {rate:.0%} < {min_rate:.0%}")
    if failures:
        return failures, None
    return [], (f"reg-cache invariant holds: >= {min_rate:.0%} steady-state "
                f"hit rate in {checked} rendezvous row(s)")


def check_backpressure_invariant(results_dirs, min_ratio=0.5):
    """Futex-backpressure invariant from the hostile-conditions work: the CI
    soak reruns the real-transport fig4 sweep with a deliberately tiny SHM
    ring (LCI_SHM_RING_KB=8). Two things must hold across the merged shm
    reports: (1) the small-ring rows actually parked producers on the
    consumer-progress futex (sum of bp_waits > 0 — if it is zero the
    producer never saw ring-full and the soak tested nothing), and (2) on
    small messages (<= 4096 B, where the ring size is the only difference)
    the small-ring throughput stays within min_ratio of the default-ring
    run — parking must be a bounded wait, not a collapse. Large-message
    rows are excluded: a tiny ring legitimately serializes rendezvous
    traffic. Reports without small-ring rows (no soak ran) check nothing."""
    by_ring = {}
    for results_dir in results_dirs:
        if not os.path.isdir(results_dir):
            continue
        for fname in sorted(os.listdir(results_dir)):
            if not fname.startswith("BENCH_fig4_bandwidth_shm") or \
               not fname.endswith(".json"):
                continue
            report = load_report(os.path.join(results_dir, fname))
            for row in report.get("rows", []):
                ring = row.get("ring_kb", 1024)
                sizes = by_ring.setdefault(ring, {})
                size = row.get("msg_size", 0)
                cur = sizes.setdefault(size, {"gb": 0.0, "bp": 0})
                cur["gb"] = max(cur["gb"], row.get("gb_per_sec", 0.0))
                cur["bp"] += row.get("bp_waits", 0)
    if len(by_ring) < 2:
        return [], ("backpressure invariant: no small-ring soak rows "
                    "(nothing to check)")
    small = min(by_ring)
    default = max(by_ring)
    failures = []
    total_bp = sum(cell["bp"] for cell in by_ring[small].values())
    if total_bp <= 0:
        failures.append(
            f"backpressure invariant violated: ring_kb={small} soak rows "
            f"recorded zero backpressure_waits (the ring never filled; the "
            f"soak exercised nothing)")
    checked = 0
    for size in sorted(by_ring[small].keys() & by_ring[default].keys()):
        if size > 4096:
            continue
        slow = by_ring[small][size]["gb"]
        fast = by_ring[default][size]["gb"]
        if fast <= 0:
            continue
        checked += 1
        if slow < fast * min_ratio:
            failures.append(
                f"backpressure invariant violated: msg_size={size} "
                f"ring_kb={small} throughput {slow:.4g} GB/s < "
                f"{min_ratio:.0%} of ring_kb={default} run "
                f"({fast:.4g} GB/s) — futex wait is collapsing, not "
                f"bounding")
    if failures:
        return failures, None
    return [], (f"backpressure invariant holds: {total_bp} futex wait(s) "
                f"on ring_kb={small}, throughput within {min_ratio:.0%} of "
                f"ring_kb={default} on {checked} small-message size(s)")


def merge_results(name, paths):
    """Best-per-row merge across repeated runs of the same bench."""
    metric, higher_better = METRICS[name]
    merged = None
    for path in paths:
        report = load_report(path)
        if merged is None:
            merged = report
            continue
        rows = {row_key(r): r for r in merged.get("rows", [])}
        for row in report.get("rows", []):
            key = row_key(row)
            old = rows.get(key)
            if old is None:
                merged["rows"].append(row)
                rows[key] = row
                continue
            a, b = old.get(metric), row.get(metric)
            if a is None or b is None:
                continue
            better = max(a, b) if higher_better else min(a, b)
            old[metric] = better
            # Health counters merge worst-case: a lock retry in *any* run is
            # a violation, even if the other run's rate wins the row.
            if "retry_lock" in row:
                old["retry_lock"] = max(old.get("retry_lock", 0),
                                        row.get("retry_lock", 0))
    return merged


def run_check(baseline_dir, results_dirs, warn_threshold, fail_threshold,
              agg_factor, reg_cache_rate=0.90, recv_floor=1.0527):
    failures, warnings, checked = [], [], 0
    reg_fails, reg_note = check_reg_cache_invariant(results_dirs,
                                                    reg_cache_rate)
    if reg_fails:
        failures.extend(reg_fails)
    elif reg_note:
        print(f"  {reg_note}")
    bp_fails, bp_note = check_backpressure_invariant(results_dirs)
    if bp_fails:
        failures.extend(bp_fails)
    elif bp_note:
        print(f"  {bp_note}")
    for name in sorted(METRICS):
        base_path = os.path.join(baseline_dir, f"BENCH_{name}.json")
        new_paths = [os.path.join(d, f"BENCH_{name}.json")
                     for d in results_dirs]
        new_paths = [p for p in new_paths if os.path.exists(p)]
        if not new_paths:
            warnings.append(f"{name}: no results in "
                            f"{', '.join(results_dirs)}")
            continue
        if not os.path.exists(base_path):
            warnings.append(f"{name}: no baseline at {base_path} "
                            f"(not gated)")
            continue
        baseline = load_report(base_path)
        results = merge_results(name, new_paths)
        if baseline.get("meta", {}).get("smoke") != \
           results.get("meta", {}).get("smoke"):
            warnings.append(f"{name}: smoke flag differs between baseline "
                            f"and results; numbers are not comparable "
                            f"like-for-like")
        f, w = compare_bench(name, baseline, results, warn_threshold,
                             fail_threshold)
        failures.extend(f)
        warnings.extend(w)
        checked += 1
        if name == "fig3_msgrate_thread":
            fail, note = check_agg_invariant(results, agg_factor)
            if fail:
                failures.append(fail)
            else:
                print(f"  {note}")
            cliff_fails, cliff_note = check_cliff_invariant(results)
            if cliff_fails:
                failures.extend(cliff_fails)
            else:
                print(f"  {cliff_note}")
            agg1_fails, agg1_note = check_single_thread_agg_invariant(results)
            if agg1_fails:
                failures.extend(agg1_fails)
            else:
                print(f"  {agg1_note}")
            recv_fails, recv_note = check_recv_path_invariant(results,
                                                              recv_floor)
            if recv_fails:
                failures.extend(recv_fails)
            else:
                print(f"  {recv_note}")

    for msg in warnings:
        print(f"WARN: {msg}")
    for msg in failures:
        print(f"FAIL: {msg}")
    print(f"check_bench: {checked} bench(es) compared, "
          f"{len(warnings)} warning(s), {len(failures)} failure(s)")
    return 1 if failures else 0


def self_test():
    """Exercises the gate logic on synthetic reports: a clean pass, a 50%
    regression (must fail), a broken aggregation invariant (must fail), a
    4->8 thread cliff (must fail), a 1-thread aggregation penalty (must
    fail), the recv-path floor (sub-floor 8-thread rate fails, nonzero
    retry_lock fails), and the registration-cache hit-rate invariant
    (healthy 15/16 passes, cold-every-time 5/16 fails; eager rows with zero
    registrations are exempt)."""
    import tempfile

    def write(dirname, name, rows, smoke=1):
        with open(os.path.join(dirname, f"BENCH_{name}.json"), "w") as f:
            json.dump({"bench": name, "meta": {"smoke": smoke},
                       "rows": rows}, f)

    # lci non-aggregated at 1.2 Mmsg/s clears the recv-path floor (1.0527)
    # and keeps the lci+agg/lci ratio at 2.5/1.2 ~ 2.08 >= the 2.0 gate;
    # rows deliberately omit retry_lock to prove absence reads as zero.
    fig3_rows = [
        {"mode": "shared", "lock_model": "ibv", "threads": t,
         "backend": b, "aggregation": a, "msg_size": 8, "mmsg_per_sec": r}
        for t in (1, 4, 8)
        for b, a, r in (("lci", 0, 1.2), ("lci", 1, 2.5), ("mpi", 0, 0.4))
    ]
    fig2_rows = [{"procs_per_node": p, "backend": "lci", "aggregation": 0,
                  "msg_size": 8, "mmsg_per_sec": 0.5} for p in (1, 2)]
    lat_rows = [{"backend": "lci", "median_us": 3.0, "p99_us": 10.0}]

    with tempfile.TemporaryDirectory() as base, \
         tempfile.TemporaryDirectory() as good, \
         tempfile.TemporaryDirectory() as bad, \
         tempfile.TemporaryDirectory() as noagg, \
         tempfile.TemporaryDirectory() as cliff, \
         tempfile.TemporaryDirectory() as agg1, \
         tempfile.TemporaryDirectory() as slowrecv, \
         tempfile.TemporaryDirectory() as locked:
        for d in (base, good):
            write(d, "fig2_msgrate_process", fig2_rows)
            write(d, "fig3_msgrate_thread", fig3_rows)
            write(d, "latency", lat_rows)

        # 50% throughput regression on fig2 + 50% latency regression.
        write(bad, "fig2_msgrate_process",
              [dict(r, mmsg_per_sec=r["mmsg_per_sec"] * 0.5)
               for r in fig2_rows])
        write(bad, "fig3_msgrate_thread", fig3_rows)
        write(bad, "latency", [dict(r, median_us=r["median_us"] * 1.5)
                               for r in lat_rows])

        # Aggregation stops helping: agg rate == plain rate.
        write(noagg, "fig2_msgrate_process", fig2_rows)
        write(noagg, "fig3_msgrate_thread",
              [dict(r, mmsg_per_sec=1.0) if r["backend"] == "lci" else r
               for r in fig3_rows])
        write(noagg, "latency", lat_rows)

        # 4->8 thread cliff: the 8-thread non-aggregated rate drops to 0.55
        # while 4 threads stays at 1.2. The cliff/penalty self-tests pass a
        # loosened per-row fail threshold (0.60) so the failure comes from
        # the shape invariants (the cliff, and at 0.55 also the recv-path
        # floor), not the row-level regression gate.
        write(cliff, "fig2_msgrate_process", fig2_rows)
        write(cliff, "fig3_msgrate_thread",
              [dict(r, mmsg_per_sec=0.55)
               if r["backend"] == "lci" and r["aggregation"] == 0
               and r["threads"] == 8 else r
               for r in fig3_rows])
        write(cliff, "latency", lat_rows)

        # 1-thread aggregation penalty: agg-on drops to 0.7x plain in the
        # (only) config, so the median ratio across configs is 0.7 < 0.85.
        write(agg1, "fig2_msgrate_process", fig2_rows)
        write(agg1, "fig3_msgrate_thread",
              [dict(r, mmsg_per_sec=0.7)
               if r["backend"] == "lci" and r["aggregation"] == 1
               and r["threads"] == 1 else r
               for r in fig3_rows])
        write(agg1, "latency", lat_rows)

        # Recv-path floor violation: every non-aggregated lci row sags to a
        # flat 0.96 Mmsg/s. Flat, so the 4->8 cliff check stays quiet; a
        # 1.2 -> 0.96 row regression is 20%, under the 35% row gate; the
        # agg ratio 2.5/0.96 still clears 2.0 — only the floor can fail.
        write(slowrecv, "fig2_msgrate_process", fig2_rows)
        write(slowrecv, "fig3_msgrate_thread",
              [dict(r, mmsg_per_sec=0.96)
               if r["backend"] == "lci" and r["aggregation"] == 0 else r
               for r in fig3_rows])
        write(slowrecv, "latency", lat_rows)

        # Rates are healthy but the best 8-thread row took device-lock
        # retries: the lock-free invariant alone must fail the gate.
        write(locked, "fig2_msgrate_process", fig2_rows)
        write(locked, "fig3_msgrate_thread",
              [dict(r, retry_lock=7)
               if r["backend"] == "lci" and r["aggregation"] == 0
               and r["threads"] == 8 else r
               for r in fig3_rows])
        write(locked, "latency", lat_rows)

        print("== self-test: identical results must pass")
        assert run_check(base, [good], 0.10, 0.35, 2.0) == 0

        print("== self-test: 50% regression must fail")
        assert run_check(base, [bad], 0.10, 0.35, 2.0) == 1

        print("== self-test: broken aggregation invariant must fail")
        assert run_check(base, [noagg], 0.10, 0.35, 2.0) == 1

        print("== self-test: 4->8 thread cliff must fail")
        assert run_check(base, [cliff], 0.10, 0.60, 2.0) == 1

        print("== self-test: 1-thread aggregation penalty must fail")
        # 2.5 -> 0.7 is a 72% row regression; 0.80 keeps the row gate quiet
        # so the exit code can only come from the median-ratio invariant.
        assert run_check(base, [agg1], 0.10, 0.80, 2.0) == 1

        print("== self-test: sub-floor recv-path rate must fail")
        assert run_check(base, [slowrecv], 0.10, 0.35, 2.0) == 1

        print("== self-test: nonzero retry_lock on the best row must fail")
        assert run_check(base, [locked], 0.10, 0.35, 2.0) == 1

        print("== self-test: one good run among the merged set must pass")
        assert run_check(base, [bad, good], 0.10, 0.35, 2.0) == 0

    def fig4_rows(hits, misses):
        return [{"net": "shm", "mode": "real", "backend": "lci",
                 "threads": 1, "msg_size": 65536, "reg_hits": hits,
                 "reg_misses": misses, "gb_per_sec": 1.0},
                {"net": "shm", "mode": "real", "backend": "lci",
                 "threads": 1, "msg_size": 16, "reg_hits": 0,
                 "reg_misses": 0, "gb_per_sec": 0.1}]

    with tempfile.TemporaryDirectory() as base, \
         tempfile.TemporaryDirectory() as warm, \
         tempfile.TemporaryDirectory() as cold:
        write(warm, "fig4_bandwidth_shm", fig4_rows(15, 1))
        write(cold, "fig4_bandwidth_shm", fig4_rows(5, 11))

        print("== self-test: healthy reg-cache hit rate must pass")
        assert run_check(base, [warm], 0.10, 0.35, 2.0) == 0

        print("== self-test: cold reg-cache hit rate must fail")
        assert run_check(base, [cold], 0.10, 0.35, 2.0) == 1

    def ring_rows(ring_kb, gbps, bp):
        return [{"net": "shm", "mode": "real", "backend": "lci",
                 "threads": 1, "msg_size": 1024, "ring_kb": ring_kb,
                 "reg_hits": 0, "reg_misses": 0, "bp_waits": bp,
                 "gb_per_sec": gbps},
                {"net": "shm", "mode": "real", "backend": "lci",
                 "threads": 1, "msg_size": 1 << 20, "ring_kb": ring_kb,
                 "reg_hits": 15, "reg_misses": 1, "bp_waits": bp,
                 "gb_per_sec": gbps * 0.1}]  # big rows exempt from the ratio

    with tempfile.TemporaryDirectory() as base, \
         tempfile.TemporaryDirectory() as deflt, \
         tempfile.TemporaryDirectory() as soak_ok, \
         tempfile.TemporaryDirectory() as soak_idle, \
         tempfile.TemporaryDirectory() as soak_slow:
        write(deflt, "fig4_bandwidth_shm", ring_rows(1024, 2.0, 0))
        write(soak_ok, "fig4_bandwidth_shm", ring_rows(8, 1.2, 37))
        write(soak_idle, "fig4_bandwidth_shm", ring_rows(8, 1.2, 0))
        write(soak_slow, "fig4_bandwidth_shm", ring_rows(8, 0.4, 37))

        print("== self-test: healthy backpressure soak must pass")
        assert run_check(base, [deflt, soak_ok], 0.10, 0.35, 2.0) == 0

        print("== self-test: soak with zero futex waits must fail")
        assert run_check(base, [deflt, soak_idle], 0.10, 0.35, 2.0) == 1

        print("== self-test: small-ring throughput collapse must fail")
        assert run_check(base, [deflt, soak_slow], 0.10, 0.35, 2.0) == 1

    print("check_bench self-test: PASS")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default=".")
    parser.add_argument("--results-dir", action="append", dest="results_dirs",
                        metavar="DIR",
                        help="results directory; repeat for best-per-row "
                             "merging across runs")
    parser.add_argument("--warn-threshold", type=float, default=0.10,
                        help="warn on regressions beyond this fraction")
    parser.add_argument("--fail-threshold", type=float, default=0.35,
                        help="fail on regressions beyond this fraction")
    parser.add_argument("--agg-factor", type=float, default=2.0,
                        help="required best-case lci+agg/lci speedup in fig3")
    parser.add_argument("--reg-cache-rate", type=float, default=0.90,
                        help="required steady-state registration-cache hit "
                             "rate on real-backend fig4 rendezvous rows")
    parser.add_argument("--recv-floor", type=float, default=1.0527,
                        help="required best-config 8-thread non-aggregated "
                             "lci rate in fig3, Mmsg/s (0.915 pre-sharding "
                             "baseline * 1.15)")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    results_dirs = args.results_dirs or ["build/bench_reports"]
    return run_check(args.baseline_dir, results_dirs,
                     args.warn_threshold, args.fail_threshold,
                     args.agg_factor, args.reg_cache_rate, args.recv_floor)


if __name__ == "__main__":
    sys.exit(main())
